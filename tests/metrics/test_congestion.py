"""Tests for congestion analysis."""

import numpy as np
import pytest

from repro.metrics.congestion import (
    bottleneck_links,
    congestion_report,
    gini_coefficient,
)
from repro.noc.interconnect import Interconnect
from repro.noc.packet import Injection
from repro.noc.stats import NocStats
from repro.noc.topology import star, tree


class TestGini:
    def test_uniform_zero(self):
        assert gini_coefficient(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0)

    def test_concentrated_high(self):
        g = gini_coefficient(np.array([0.0, 0.0, 0.0, 100.0]))
        assert g > 0.7

    def test_empty_zero(self):
        assert gini_coefficient(np.array([])) == 0.0

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    def test_monotone_in_concentration(self):
        even = gini_coefficient(np.array([3.0, 3.0, 3.0, 3.0]))
        skew = gini_coefficient(np.array([1.0, 1.0, 1.0, 9.0]))
        assert skew > even


class TestCongestionReport:
    def _simulate(self, topo, injections):
        return Interconnect(topo).simulate(injections)

    def test_hotspot_through_hub(self):
        """Star traffic funnels through the hub: high load concentration."""
        topo = star(5)
        injections = [
            Injection(cycle=c, src_node=s, dst_nodes=(3,), src_neuron=s,
                      uid=c * 10 + s)
            for c in range(10) for s in range(3)
        ]
        stats = self._simulate(topo, injections)
        report = congestion_report(stats, topo)
        assert report.max_link_load >= 10
        assert report.n_links_used <= report.n_links_total
        # Hub->destination link is the hottest.
        hottest_link, _ = report.hotspots[0]
        assert hottest_link[1] == 3 or hottest_link[0] == 5

    def test_empty_stats(self):
        report = congestion_report(NocStats(), tree(4))
        assert report.max_link_load == 0
        assert report.gini == 0.0
        assert report.utilization_spread == 0.0

    def test_balanced_vs_hotspot_gini(self):
        topo = star(5)
        hotspot = [
            Injection(cycle=c, src_node=0, dst_nodes=(1,), src_neuron=0,
                      uid=c)
            for c in range(12)
        ]
        balanced = [
            Injection(cycle=c, src_node=s, dst_nodes=((s + 1) % 4,),
                      src_neuron=s, uid=c * 10 + s)
            for c in range(3) for s in range(4)
        ]
        g_hot = congestion_report(self._simulate(topo, hotspot), topo).gini
        topo2 = star(5)
        g_bal = congestion_report(
            Interconnect(topo2).simulate(balanced), topo2
        ).gini
        assert g_hot > g_bal


class TestBottleneckLinks:
    def test_threshold_selects_heavy(self):
        stats = NocStats()
        for _ in range(10):
            stats.count_link(0, 1)
        stats.count_link(1, 2)
        assert bottleneck_links(stats, threshold_fraction=0.5) == [(0, 1)]

    def test_threshold_one_only_peak(self):
        stats = NocStats()
        stats.count_link(0, 1)
        stats.count_link(0, 1)
        stats.count_link(1, 2)
        assert bottleneck_links(stats, threshold_fraction=1.0) == [(0, 1)]

    def test_empty(self):
        assert bottleneck_links(NocStats()) == []

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            bottleneck_links(NocStats(), threshold_fraction=0.0)
