"""Tests for topology builders."""

import networkx as nx
import pytest

from repro.noc.topology import (
    Topology,
    build_topology,
    mesh,
    mesh_for,
    star,
    torus,
    tree,
)


class TestMesh:
    def test_dimensions(self):
        topo = mesh(3, 4)
        assert topo.n_routers == 12
        assert topo.graph.number_of_edges() == 3 * 3 + 2 * 4  # 17

    def test_square_default(self):
        assert mesh(3).n_routers == 9

    def test_positions_cover_grid(self):
        topo = mesh(2, 2)
        assert set(topo.positions.values()) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_every_router_is_attach_point(self):
        topo = mesh(2, 3)
        assert topo.attach_points == list(range(6))

    def test_single_node(self):
        topo = mesh(1, 1)
        assert topo.n_routers == 1


class TestTree:
    @pytest.mark.parametrize("n_leaves", [1, 2, 3, 4, 5, 8, 13])
    def test_leaves_are_attach_points(self, n_leaves):
        topo = tree(n_leaves)
        assert topo.n_attach_points == n_leaves
        assert nx.is_connected(topo.graph)

    def test_binary_tree_structure(self):
        topo = tree(4, arity=2)
        # 4 leaves + 2 mid + 1 root = 7 routers.
        assert topo.n_routers == 7

    def test_quad_tree_flatter(self):
        topo = tree(4, arity=4)
        assert topo.n_routers == 5  # 4 leaves + 1 root

    def test_leaves_have_degree_one(self):
        topo = tree(8, arity=2)
        for leaf in topo.attach_points:
            assert topo.graph.degree(leaf) == 1

    def test_arity_one_rejected(self):
        with pytest.raises(ValueError):
            tree(4, arity=1)


class TestStar:
    def test_structure(self):
        topo = star(5)
        assert topo.n_routers == 6
        hub = 5
        assert topo.graph.degree(hub) == 5

    def test_diameter_two(self):
        assert star(4).diameter() == 2


class TestTorus:
    def test_wraparound_links(self):
        topo = torus(3, 3)
        assert topo.graph.has_edge(0, 2)      # row wrap
        assert topo.graph.has_edge(0, 6)      # column wrap

    def test_smaller_diameter_than_mesh(self):
        assert torus(4).diameter() < mesh(4).diameter()


class TestMeshFor:
    @pytest.mark.parametrize("n", [1, 2, 5, 9, 10, 17])
    def test_covers_crossbars(self, n):
        topo = mesh_for(n)
        assert topo.n_attach_points == n
        assert topo.n_routers >= n


class TestBuildTopology:
    @pytest.mark.parametrize("kind", ["tree", "mesh", "star", "torus"])
    def test_families(self, kind):
        topo = build_topology(kind, 6)
        assert topo.n_attach_points == 6

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            build_topology("hypercube", 4)


class TestTopologyValidation:
    def test_attach_point_must_exist(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError, match="not routers"):
            Topology(graph=g, attach_points=[0, 7], kind="test")

    def test_attach_points_distinct(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError, match="distinct"):
            Topology(graph=g, attach_points=[0, 0], kind="test")

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            Topology(graph=g, attach_points=[0], kind="test")

    def test_node_of_crossbar_bounds(self):
        topo = tree(3)
        with pytest.raises(IndexError):
            topo.node_of_crossbar(3)
