"""Tests for topology builders."""

import networkx as nx
import pytest

from repro.noc.topology import (
    Topology,
    build_topology,
    mesh,
    mesh_for,
    star,
    torus,
    tree,
)


class TestMesh:
    def test_dimensions(self):
        topo = mesh(3, 4)
        assert topo.n_routers == 12
        assert topo.graph.number_of_edges() == 3 * 3 + 2 * 4  # 17

    def test_square_default(self):
        assert mesh(3).n_routers == 9

    def test_positions_cover_grid(self):
        topo = mesh(2, 2)
        assert set(topo.positions.values()) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_every_router_is_attach_point(self):
        topo = mesh(2, 3)
        assert topo.attach_points == list(range(6))

    def test_single_node(self):
        topo = mesh(1, 1)
        assert topo.n_routers == 1


class TestTree:
    @pytest.mark.parametrize("n_leaves", [1, 2, 3, 4, 5, 8, 13])
    def test_leaves_are_attach_points(self, n_leaves):
        topo = tree(n_leaves)
        assert topo.n_attach_points == n_leaves
        assert nx.is_connected(topo.graph)

    def test_binary_tree_structure(self):
        topo = tree(4, arity=2)
        # 4 leaves + 2 mid + 1 root = 7 routers.
        assert topo.n_routers == 7

    def test_quad_tree_flatter(self):
        topo = tree(4, arity=4)
        assert topo.n_routers == 5  # 4 leaves + 1 root

    def test_leaves_have_degree_one(self):
        topo = tree(8, arity=2)
        for leaf in topo.attach_points:
            assert topo.graph.degree(leaf) == 1

    def test_arity_one_rejected(self):
        with pytest.raises(ValueError):
            tree(4, arity=1)


class TestStar:
    def test_structure(self):
        topo = star(5)
        assert topo.n_routers == 6
        hub = 5
        assert topo.graph.degree(hub) == 5

    def test_diameter_two(self):
        assert star(4).diameter() == 2

    def test_single_crossbar_star(self):
        """The degenerate 1-crossbar star stays connected and routable."""
        topo = star(1)
        assert topo.n_routers == 2           # crossbar 0 + hub 1
        assert topo.attach_points == [0]
        assert topo.node_of_crossbar(0) == 0
        from repro.noc.routing import routing_for
        routing = routing_for(topo)
        assert routing.distance(0, 1) == 1


class TestTorus:
    def test_wraparound_links(self):
        topo = torus(3, 3)
        assert topo.graph.has_edge(0, 2)      # row wrap
        assert topo.graph.has_edge(0, 6)      # column wrap

    def test_smaller_diameter_than_mesh(self):
        assert torus(4).diameter() < mesh(4).diameter()

    def test_width_two_adds_no_duplicate_wrap(self):
        """A 2-wide dimension already has the wrap link as a mesh edge."""
        topo = torus(2, 3)
        assert topo.graph.number_of_edges() == mesh(2, 3).graph.number_of_edges() + 2

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 11])
    def test_torus_for_non_square_sizes(self, n):
        from repro.noc.topology import _torus_for

        topo = _torus_for(n)
        assert topo.n_attach_points == n
        assert topo.kind == "torus"
        assert nx.is_connected(topo.graph)
        # Attach points are the first n routers, each carrying a position.
        for k in range(n):
            assert topo.node_of_crossbar(k) in topo.positions

    def test_torus_for_five_wraps_rows_only(self):
        # 5 crossbars -> 3x2 grid: width 3 wraps, height 2 does not.
        topo = _import_torus_for()(5)
        assert topo.graph.has_edge(0, 2)          # row wrap on width 3
        assert topo.n_routers == 6


def _import_torus_for():
    from repro.noc.topology import _torus_for

    return _torus_for


class TestXYRoutingPositions:
    def test_xy_requires_positions(self):
        from repro.noc.routing import xy_routing

        with pytest.raises(ValueError, match="positions"):
            xy_routing(tree(4))

    def test_torus_positions_support_xy(self):
        """Tori keep full grid positions, so XY routing stays valid."""
        from repro.noc.routing import xy_routing

        topo = torus(3, 2)
        routing = xy_routing(topo)
        assert routing.distance(0, 5) == 3  # manhattan on the grid

    def test_mesh_for_positions_cover_attach_points(self):
        topo = mesh_for(7)
        for k in range(7):
            assert topo.node_of_crossbar(k) in topo.positions


class TestCaching:
    def test_diameter_cached(self, monkeypatch):
        topo = mesh(3)
        first = topo.diameter()
        import repro.noc.topology as topo_mod

        def boom(_):
            raise AssertionError("diameter recomputed despite cache")

        monkeypatch.setattr(topo_mod.nx, "diameter", boom)
        assert topo.diameter() == first

    def test_hop_matrix_cached_per_routing(self):
        from repro.noc.routing import routing_for, shortest_path_routing

        topo = mesh(3)
        routing = routing_for(topo)
        first = topo.crossbar_hop_matrix(routing)
        assert topo.crossbar_hop_matrix(routing) is first
        # Distinct instances of the same algorithm share the cache entry.
        assert topo.crossbar_hop_matrix(routing_for(topo)) is first
        # A different algorithm gets its own entry.
        other = topo.crossbar_hop_matrix(shortest_path_routing(topo))
        assert other is not first

    def test_hop_matrix_read_only_and_correct(self):
        from repro.noc.routing import routing_for

        topo = mesh(3)
        routing = routing_for(topo)
        matrix = topo.crossbar_hop_matrix(routing)
        assert not matrix.flags.writeable
        for k1 in range(topo.n_attach_points):
            for k2 in range(topo.n_attach_points):
                expected = 0 if k1 == k2 else routing.distance(
                    topo.node_of_crossbar(k1), topo.node_of_crossbar(k2)
                )
                assert matrix[k1, k2] == expected

    def test_default_routing_hop_matrix(self):
        topo = tree(4)
        matrix = topo.crossbar_hop_matrix()
        assert matrix.shape == (4, 4)
        assert matrix[0, 1] == 2.0


class TestMeshFor:
    @pytest.mark.parametrize("n", [1, 2, 5, 9, 10, 17])
    def test_covers_crossbars(self, n):
        topo = mesh_for(n)
        assert topo.n_attach_points == n
        assert topo.n_routers >= n


class TestBuildTopology:
    @pytest.mark.parametrize(
        "kind", ["tree", "mesh", "star", "torus", "multichip"]
    )
    def test_families(self, kind):
        topo = build_topology(kind, 6)
        assert topo.n_attach_points == 6

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            build_topology("hypercube", 4)

    def test_unknown_kind_lists_options(self):
        """The error is a ValueError naming every known family."""
        with pytest.raises(ValueError) as excinfo:
            build_topology("hypercube", 4)
        message = str(excinfo.value)
        for kind in ("tree", "mesh", "star", "torus", "multichip"):
            assert kind in message


class TestTopologyValidation:
    def test_attach_point_must_exist(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError, match="not routers"):
            Topology(graph=g, attach_points=[0, 7], kind="test")

    def test_attach_points_distinct(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError, match="distinct"):
            Topology(graph=g, attach_points=[0, 0], kind="test")

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            Topology(graph=g, attach_points=[0], kind="test")

    def test_node_of_crossbar_bounds(self):
        topo = tree(3)
        with pytest.raises(IndexError):
            topo.node_of_crossbar(3)
