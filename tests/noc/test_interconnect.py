"""Tests for the cycle-accurate interconnect simulator."""

import pytest

from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.packet import Injection
from repro.noc.routing import shortest_path_routing
from repro.noc.topology import mesh, star, tree


def _inject(cycle, src, dsts, neuron=0, uid=-1):
    return Injection(cycle=cycle, src_node=src, dst_nodes=tuple(dsts),
                     src_neuron=neuron, uid=uid)


class TestBasicDelivery:
    def test_single_packet_delivered(self):
        topo = tree(4)
        stats = Interconnect(topo).simulate([_inject(0, 0, [3])])
        assert stats.delivered_count == 1
        assert stats.undelivered_count == 0

    def test_latency_at_least_distance(self):
        topo = tree(8)
        routing = shortest_path_routing(topo)
        stats = Interconnect(topo, routing).simulate([_inject(0, 0, [7])])
        rec = stats.deliveries[0]
        assert rec.delivered_cycle - rec.injected_cycle >= routing.distance(0, 7)

    def test_hops_equal_distance_uncongested(self):
        topo = mesh(3)
        stats = Interconnect(topo).simulate([_inject(0, 0, [8])])
        assert stats.deliveries[0].hops == 4  # Manhattan distance

    def test_empty_schedule(self):
        stats = Interconnect(tree(2)).simulate([])
        assert stats.delivered_count == 0
        assert stats.cycles_run == 0

    def test_self_destination_dropped(self):
        stats = Interconnect(tree(4)).simulate([_inject(0, 0, [0])])
        assert stats.n_injected == 0

    def test_delivery_record_fields(self):
        topo = star(3)
        stats = Interconnect(topo).simulate([_inject(5, 0, [2], neuron=42)])
        rec = stats.deliveries[0]
        assert rec.src_neuron == 42
        assert rec.src_node == 0
        assert rec.dst_node == 2
        assert rec.injected_cycle == 5


class TestMulticast:
    def test_multicast_reaches_all(self):
        topo = tree(4)
        stats = Interconnect(topo).simulate([_inject(0, 0, [1, 2, 3])])
        assert stats.delivered_count == 3
        assert {r.dst_node for r in stats.deliveries} == {1, 2, 3}

    def test_multicast_shares_trunk(self):
        """A forked packet uses shared links once (tree: 0->root once)."""
        topo = tree(4, arity=2)  # 0,1 under 4; 2,3 under 5; root 6
        multicast = Interconnect(topo, config=NocConfig(multicast=True))
        m_stats = multicast.simulate([_inject(0, 0, [2, 3])])
        unicast = Interconnect(topo, config=NocConfig(multicast=False))
        u_stats = unicast.simulate([_inject(0, 0, [2, 3])])
        # Unicast sends two packets up the shared trunk; multicast one.
        assert m_stats.total_hops() < u_stats.total_hops()

    def test_unicast_expected_deliveries(self):
        topo = tree(4)
        stats = Interconnect(topo, config=NocConfig(multicast=False)).simulate(
            [_inject(0, 0, [1, 2, 3])]
        )
        assert stats.n_expected_deliveries == 3
        assert stats.delivered_count == 3

    def test_same_uid_on_multicast_copies(self):
        topo = tree(4)
        stats = Interconnect(topo).simulate([_inject(0, 0, [1, 2, 3], uid=77)])
        assert all(r.uid == 77 for r in stats.deliveries)


class TestCongestion:
    def test_burst_queues_at_ejection(self):
        """Many sources to one destination: deliveries serialize."""
        topo = star(5)
        injections = [_inject(0, s, [4 - 1], neuron=s) for s in range(3)]
        # three packets target node 3; hub ejects 1/cycle at the dst router
        stats = Interconnect(topo).simulate(injections)
        times = sorted(r.delivered_cycle for r in stats.deliveries)
        assert len(set(times)) == 3  # strictly serialized

    def test_bounded_buffers_backpressure(self):
        topo = star(8)
        config = NocConfig(buffer_capacity=1)
        injections = [
            _inject(c, s, [7 - 1], neuron=s)
            for c in range(5)
            for s in range(5)
        ]
        stats = Interconnect(topo, config=config).simulate(injections)
        assert stats.undelivered_count == 0  # drains despite tiny buffers
        assert stats.peak_buffer_occupancy <= 1

    def test_latency_grows_with_load(self):
        topo = tree(4)
        light = Interconnect(topo).simulate(
            [_inject(i * 50, 0, [3]) for i in range(5)]
        )
        heavy = Interconnect(topo).simulate(
            [_inject(0, s, [3], neuron=s) for s in range(3) for _ in range(5)]
        )
        assert heavy.max_latency() > light.max_latency()


class TestDrainSafety:
    def test_deadline_reports_undelivered(self):
        topo = tree(2)
        config = NocConfig(max_extra_cycles=1)
        # One hop needs ~2 cycles (leaf -> leaf via root is 2 hops); the
        # 1-cycle drain budget cannot complete it.
        stats = Interconnect(topo, config=config).simulate([_inject(0, 0, [1])])
        assert stats.undelivered_count > 0

    def test_idle_gap_fast_forward(self):
        topo = tree(2)
        stats = Interconnect(topo).simulate(
            [_inject(0, 0, [1]), _inject(1_000_000, 0, [1])]
        )
        assert stats.delivered_count == 2


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs", [dict(buffer_capacity=0), dict(ejections_per_cycle=0),
                   dict(max_extra_cycles=0)]
    )
    def test_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            NocConfig(**kwargs)


class TestLinkLoads:
    def test_loads_recorded(self):
        topo = tree(4, arity=2)
        stats = Interconnect(topo).simulate([_inject(0, 0, [3])])
        # Path 0 -> 4 -> 6 -> 5 -> 3: four directed links.
        assert stats.total_hops() == 4
        assert stats.link_loads[(0, 4)] == 1

    def test_hottest_links_sorted(self):
        topo = star(4)
        injections = [_inject(c, 0, [1]) for c in range(10)]
        stats = Interconnect(topo).simulate(injections)
        hottest = stats.hottest_links(top=2)
        assert hottest[0][1] >= hottest[1][1]
