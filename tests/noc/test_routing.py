"""Tests for routing tables."""

import pytest

from repro.noc.routing import routing_for, shortest_path_routing, xy_routing
from repro.noc.topology import mesh, star, tree


def _walk(routing, topo, src, dst):
    """Follow next hops from src to dst, returning the path."""
    path = [src]
    here = src
    for _ in range(topo.n_routers + 1):
        if here == dst:
            return path
        here = routing.next_hop(here, dst)
        path.append(here)
    raise AssertionError(f"routing loop from {src} to {dst}: {path}")


class TestShortestPathRouting:
    @pytest.mark.parametrize("topo_fn", [lambda: tree(8), lambda: star(5),
                                         lambda: mesh(3)])
    def test_all_pairs_reach(self, topo_fn):
        topo = topo_fn()
        routing = shortest_path_routing(topo)
        nodes = list(topo.graph.nodes)
        for s in nodes:
            for d in nodes:
                if s != d:
                    path = _walk(routing, topo, s, d)
                    assert path[-1] == d
                    assert len(path) - 1 == routing.distance(s, d)

    def test_distance_zero_to_self(self):
        routing = shortest_path_routing(tree(4))
        assert routing.distance(0, 0) == 0

    def test_next_hop_to_self_rejected(self):
        routing = shortest_path_routing(tree(4))
        with pytest.raises(ValueError):
            routing.next_hop(2, 2)

    def test_tree_path_through_root(self):
        topo = tree(4, arity=2)  # leaves 0-3, parents 4,5, root 6
        routing = shortest_path_routing(topo)
        path = _walk(routing, topo, 0, 3)
        assert path == [0, 4, 6, 5, 3]

    def test_deterministic(self):
        topo = mesh(3)
        r1 = shortest_path_routing(topo)
        r2 = shortest_path_routing(topo)
        for s in topo.graph.nodes:
            for d in topo.graph.nodes:
                if s != d:
                    assert r1.next_hop(s, d) == r2.next_hop(s, d)


class TestXYRouting:
    def test_x_first(self):
        topo = mesh(3, 3)
        routing = xy_routing(topo)
        # From (0,0)=0 to (2,2)=8: X first -> 1, 2 then Y -> 5, 8.
        path = _walk(routing, topo, 0, 8)
        assert path == [0, 1, 2, 5, 8]

    def test_distance_is_manhattan(self):
        topo = mesh(4, 4)
        routing = xy_routing(topo)
        assert routing.distance(0, 15) == 6  # (0,0) -> (3,3)

    def test_matches_hop_count(self):
        topo = mesh(3, 2)
        routing = xy_routing(topo)
        for s in topo.graph.nodes:
            for d in topo.graph.nodes:
                if s != d:
                    path = _walk(routing, topo, s, d)
                    assert len(path) - 1 == routing.distance(s, d)

    def test_requires_positions(self):
        topo = tree(4)
        with pytest.raises(ValueError, match="positions"):
            xy_routing(topo)


class TestRoutingFor:
    def test_mesh_gets_xy(self):
        assert routing_for(mesh(3)).name == "xy/mesh"

    def test_tree_gets_shortest_path(self):
        assert "shortest-path" in routing_for(tree(4)).name
