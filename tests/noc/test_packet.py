"""Tests for AER spike packets."""

import pytest

from repro.noc.packet import Injection, SpikePacket


class TestSpikePacket:
    def test_requires_destinations(self):
        with pytest.raises(ValueError, match="no destinations"):
            SpikePacket(uid=0, src_neuron=1, src_node=0,
                        dst_nodes=frozenset(), injected_cycle=0)

    def test_rejects_negative_injection(self):
        with pytest.raises(ValueError, match="negative"):
            SpikePacket(uid=0, src_neuron=1, src_node=0,
                        dst_nodes=frozenset([1]), injected_cycle=-1)

    def test_fork_subset(self):
        pkt = SpikePacket(uid=3, src_neuron=7, src_node=0,
                          dst_nodes=frozenset([1, 2, 3]), injected_cycle=5,
                          hops=2)
        child = pkt.fork(frozenset([1, 2]))
        assert child.uid == 3
        assert child.hops == 2
        assert child.injected_cycle == 5
        assert child.dst_nodes == frozenset([1, 2])

    def test_fork_outside_subset_rejected(self):
        pkt = SpikePacket(uid=0, src_neuron=0, src_node=0,
                          dst_nodes=frozenset([1]), injected_cycle=0)
        with pytest.raises(ValueError, match="within"):
            pkt.fork(frozenset([9]))


class TestInjection:
    def test_fields(self):
        inj = Injection(cycle=10, src_node=0, dst_nodes=(1, 2), src_neuron=4)
        assert inj.uid == -1  # auto-assign sentinel
        assert inj.dst_nodes == (1, 2)
