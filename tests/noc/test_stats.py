"""Tests for NoC statistics containers."""

from repro.noc.stats import DeliveryRecord, NocStats


def _rec(uid=0, neuron=0, src=0, dst=1, injected=0, delivered=5, hops=2):
    return DeliveryRecord(uid=uid, src_neuron=neuron, src_node=src,
                          dst_node=dst, injected_cycle=injected,
                          delivered_cycle=delivered, hops=hops)


class TestNocStats:
    def test_latencies(self):
        stats = NocStats()
        stats.record(_rec(injected=0, delivered=5))
        stats.record(_rec(uid=1, injected=2, delivered=12))
        assert list(stats.latencies()) == [5, 10]
        assert stats.max_latency() == 10
        assert stats.mean_latency() == 7.5

    def test_empty_stats_zero(self):
        stats = NocStats()
        assert stats.max_latency() == 0
        assert stats.mean_latency() == 0.0
        assert stats.throughput_packets_per_cycle() == 0.0
        assert stats.throughput_aer_per_ms(10.0) == 0.0

    def test_throughput(self):
        stats = NocStats()
        stats.cycles_run = 100
        for i in range(10):
            stats.record(_rec(uid=i))
        assert stats.throughput_packets_per_cycle() == 0.1
        # 100 cycles at 10 cycles/ms = 10 ms; 10 packets / 10 ms = 1.
        assert stats.throughput_aer_per_ms(10.0) == 1.0

    def test_link_counting(self):
        stats = NocStats()
        stats.count_link(0, 1)
        stats.count_link(0, 1)
        stats.count_link(1, 2)
        assert stats.link_loads[(0, 1)] == 2
        assert stats.total_hops() == 3

    def test_undelivered_accounting(self):
        stats = NocStats()
        stats.n_expected_deliveries = 5
        stats.record(_rec())
        assert stats.undelivered_count == 4

    def test_records_by_destination_sorted(self):
        stats = NocStats()
        stats.record(_rec(uid=0, dst=1, delivered=9))
        stats.record(_rec(uid=1, dst=1, delivered=3))
        stats.record(_rec(uid=2, dst=2, delivered=1))
        by_dst = stats.records_by_destination()
        assert [r.uid for r in by_dst[1]] == [1, 0]
        assert len(by_dst[2]) == 1

    def test_records_by_flow(self):
        stats = NocStats()
        stats.record(_rec(uid=0, neuron=7, dst=1))
        stats.record(_rec(uid=1, neuron=7, dst=1, delivered=8))
        stats.record(_rec(uid=2, neuron=8, dst=1))
        flows = stats.records_by_flow()
        assert len(flows[(7, 1)]) == 2
        assert len(flows[(8, 1)]) == 1

    def test_describe_contains_counts(self):
        stats = NocStats()
        stats.n_expected_deliveries = 1
        stats.record(_rec())
        assert "1/1" in stats.describe()
