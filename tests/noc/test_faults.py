"""Tests for fault injection, degraded-fabric rerouting and accounting."""

import pytest

from repro.metrics.report import build_report
from repro.noc.fastsim import FastInterconnect
from repro.noc.faults import (
    FaultSet,
    FaultTimeline,
    FaultWindow,
    apply_faults,
    bridge_chains,
    degrade_topology,
    inject_random_faults,
    survivable_links,
)
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.multichip import (
    RELAY_CHIP,
    MultiChipTopology,
    chip_breakdown,
    multichip,
)
from repro.noc.packet import Injection
from repro.noc.parallel import summarize
from repro.noc.routing import routing_for
from repro.noc.topology import mesh, mesh_for, torus, tree
from repro.noc.traffic import synthetic_injections


class TestDegradeTopology:
    def test_removes_link(self):
        topo = mesh(3)
        degraded = degrade_topology(topo, [(0, 1)])
        assert not degraded.graph.has_edge(0, 1)
        assert "degraded" in degraded.kind

    def test_original_untouched(self):
        topo = mesh(3)
        degrade_topology(topo, [(0, 1)])
        assert topo.graph.has_edge(0, 1)

    def test_missing_link_rejected(self):
        with pytest.raises(ValueError, match="does not exist"):
            degrade_topology(mesh(3), [(0, 8)])

    def test_disconnecting_fault_rejected(self):
        topo = tree(4)  # every tree link is a bridge
        link = next(iter(topo.graph.edges))
        with pytest.raises(ValueError, match="disconnects"):
            degrade_topology(topo, [link])


class TestSurvivableLinks:
    def test_tree_has_none(self):
        assert survivable_links(tree(8)) == []

    def test_mesh_has_some(self):
        assert len(survivable_links(mesh(3))) > 0

    def test_torus_all_survivable(self):
        topo = torus(3)
        assert len(survivable_links(topo)) == topo.graph.number_of_edges()


class TestInjectRandomFaults:
    def test_requested_count(self):
        degraded, chosen = inject_random_faults(mesh(4), 3, seed=0)
        assert len(chosen) == 3
        assert (degraded.graph.number_of_edges()
                == mesh(4).graph.number_of_edges() - 3)

    def test_deterministic(self):
        _, a = inject_random_faults(mesh(4), 2, seed=5)
        _, b = inject_random_faults(mesh(4), 2, seed=5)
        assert a == b

    def test_tree_cannot_absorb_faults(self):
        with pytest.raises(ValueError, match="cannot survive"):
            inject_random_faults(tree(4), 1, seed=0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inject_random_faults(mesh(3), -1)


class TestReroutedTraffic:
    def test_traffic_survives_fault(self):
        """All packets still deliver after a fault, with >= latency."""
        topo = mesh(3)
        injections = [
            Injection(cycle=c, src_node=0, dst_nodes=(8,), src_neuron=0,
                      uid=c)
            for c in range(10)
        ]
        healthy = Interconnect(topo).simulate(injections)

        degraded, _ = inject_random_faults(topo, 2, seed=1)
        # Shortest-path routing adapts to the degraded graph.
        rerouted = Interconnect(
            degraded, routing=routing_for_degraded(degraded)
        ).simulate(injections)
        assert rerouted.undelivered_count == 0
        assert rerouted.mean_latency() >= healthy.mean_latency()


def routing_for_degraded(topology):
    """Degraded meshes lose grid regularity: force shortest-path routing."""
    from repro.noc.routing import shortest_path_routing
    return shortest_path_routing(topology)


class TestFaultSet:
    def test_links_normalized_undirected(self):
        fs = FaultSet(dead_links=[(3, 1), (1, 3), (0, 2)])
        assert fs.dead_links == frozenset({(1, 3), (0, 2)})

    def test_empty_is_falsy(self):
        assert not FaultSet()
        assert FaultSet(dead_routers=[5])

    def test_counts_and_describe(self):
        fs = FaultSet(
            dead_links=[(0, 1)], dead_routers=[7], faulty_crossbars=[2, 3]
        )
        assert fs.n_faults == 4
        assert "1 dead links" in fs.describe()
        assert "2 faulty crossbars" in fs.describe()

    def test_nonpositive_bridge_degradation_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultSet(degraded_bridges={0: 0})


class TestApplyFaultsSingleChip:
    def test_dead_router_removed_with_links(self):
        topo = mesh(3)
        # Router 4 (the center) hosts a crossbar, so drop an attach
        # point first to free it up.
        topo.attach_points.remove(4)
        degraded = apply_faults(topo, FaultSet(dead_routers=[4]))
        assert 4 not in degraded.graph
        assert degraded.graph.number_of_edges() == topo.graph.number_of_edges() - 4
        assert 4 not in degraded.positions

    def test_dead_router_hosting_crossbar_rejected(self):
        with pytest.raises(ValueError, match="hosts a crossbar"):
            apply_faults(mesh(3), FaultSet(dead_routers=[4]))

    def test_missing_router_rejected(self):
        topo = mesh(3)
        with pytest.raises(ValueError, match="does not exist"):
            apply_faults(topo, FaultSet(dead_routers=[99]))

    def test_faulty_crossbar_leaves_graph_untouched(self):
        topo = mesh(3)
        degraded = apply_faults(topo, FaultSet(faulty_crossbars=[0, 8]))
        assert degraded.graph.number_of_edges() == topo.graph.number_of_edges()
        assert degraded.attach_points == topo.attach_points

    def test_faulty_crossbar_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            apply_faults(mesh(3), FaultSet(faulty_crossbars=[9]))

    def test_degraded_bridge_needs_multichip(self):
        with pytest.raises(ValueError, match="multichip"):
            apply_faults(mesh(3), FaultSet(degraded_bridges={0: 1}))

    def test_disconnecting_router_rejected(self):
        topo = tree(4)
        hub = max(topo.graph.nodes)  # the root switches all traffic
        with pytest.raises(ValueError, match="disconnects"):
            apply_faults(topo, FaultSet(dead_routers=[hub]))

    def test_kind_suffix_not_stacked(self):
        once = degrade_topology(mesh(3), [(0, 1)])
        twice = degrade_topology(once, [(1, 2)])
        assert twice.kind == "mesh-degraded"


def _board(n_chips=4, bridge_latency=2):
    """2x2 chip grid of 2x2-mesh chips: the four bridges form a cycle
    (any one may die) and each chip has intra-mesh link redundancy."""
    return multichip(
        16, n_chips=n_chips, chip_kind="mesh", bridge_latency=bridge_latency
    )


class TestMultichipDegradation:
    """Regression: degradation must not drop the MultiChipTopology class."""

    def test_subclass_and_bookkeeping_survive(self):
        board = _board()
        chain = bridge_chains(board)[0]
        degraded = degrade_topology(board, [tuple(chain[:2])])
        assert isinstance(degraded, MultiChipTopology)
        assert degraded.kind == "multichip-degraded"
        assert degraded.n_chips == board.n_chips
        assert degraded.chip_of_crossbar == board.chip_of_crossbar
        assert degraded.bridge_latency == board.bridge_latency
        # Every surviving router keeps its chip assignment.
        assert all(n in degraded.chip_of_router for n in degraded.graph.nodes)

    def test_bridge_segment_kills_whole_bridge(self):
        board = _board(bridge_latency=3)
        chain = bridge_chains(board)[0]
        degraded = degrade_topology(board, [(chain[1], chain[2])])
        assert degraded.n_bridges == board.n_bridges - 1
        # All relay routers of the dead chain are gone.
        for relay in chain[1:-1]:
            assert relay not in degraded.graph
        # The other bridges are intact.
        assert len(degraded.bridge_entry_links) == 2 * degraded.n_bridges

    def test_dead_relay_router_kills_whole_bridge(self):
        board = _board(bridge_latency=3)
        chain = bridge_chains(board)[0]
        relay = chain[1]
        assert board.chip_of_router[relay] == RELAY_CHIP
        degraded = apply_faults(board, FaultSet(dead_routers=[relay]))
        assert degraded.n_bridges == board.n_bridges - 1
        for node in chain[1:-1]:
            assert node not in degraded.graph

    def test_degraded_bridge_lengthens_crossing(self):
        board = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        chain = bridge_chains(board)[0]
        slow = apply_faults(board, FaultSet(degraded_bridges={0: 3}))
        assert isinstance(slow, MultiChipTopology)
        assert slow.n_bridges == 1
        routing = routing_for(slow)
        gateways = (chain[0], chain[-1])
        assert routing.distance(*gateways) == board.bridge_latency + 3
        # Original routers keep their ids; only fresh relays are added.
        assert set(board.graph.nodes) <= set(slow.graph.nodes)

    def test_degrading_dead_bridge_rejected(self):
        board = _board()
        chain = bridge_chains(board)[0]
        faults = FaultSet(
            dead_links=[tuple(chain[:2])], degraded_bridges={0: 1}
        )
        with pytest.raises(ValueError, match="dead"):
            apply_faults(board, faults)

    def test_chip_breakdown_survives_degradation(self):
        """chip_breakdown / bridge accounting still work after faults."""
        board = _board(bridge_latency=2)
        chain = bridge_chains(board)[0]
        degraded = degrade_topology(board, [tuple(chain[:2])])
        schedule = synthetic_injections(
            [0.4] * degraded.n_attach_points, degraded, 60, fanout=3, seed=4
        )
        stats = Interconnect(degraded).simulate(schedule.injections)
        assert stats.undelivered_count == 0
        breakdown = chip_breakdown(stats, degraded)
        assert breakdown.n_chips == 4
        assert breakdown.inter_chip_deliveries > 0
        # Relay chains make every crossing cost bridge_latency hops.
        assert breakdown.inter_chip_hops == (
            breakdown.bridge_crossings * degraded.bridge_latency
        )
        summary = summarize(stats, degraded)
        assert summary.inter_chip_hops == breakdown.inter_chip_hops
        assert summary.bridge_crossings == breakdown.bridge_crossings

    def test_report_keeps_chip_rows_on_degraded_fabric(self):
        """build_report's isinstance check must see degraded multichip."""
        from repro.core.mapper import map_snn
        from repro.hardware.presets import custom
        from repro.noc.traffic import build_injections
        from repro.apps import build_application

        graph = build_application("hello_world", seed=1)
        arch = custom(
            8,
            max(16, -(-graph.n_neurons // 6)),
            interconnect="mesh",
            name="board",
            n_chips=4,
            bridge_latency=2,
        )
        board = arch.build_topology()
        chain = bridge_chains(board)[0]
        degraded = degrade_topology(board, [tuple(chain[:2])])
        mapping = map_snn(graph, arch, method="pacman")
        schedule = build_injections(
            graph, mapping.assignment, degraded,
            cycles_per_ms=arch.cycles_per_ms,
        )
        stats = Interconnect(degraded).simulate(schedule.injections)
        report = build_report("hw", mapping, stats, arch, degraded)
        assert report.n_chips == 4
        if report.bridge_crossings:
            assert report.inter_chip_hops == (
                report.bridge_crossings * degraded.bridge_latency
            )
            # The bridge energy term is charged per crossing.
            assert report.global_energy_pj == pytest.approx(
                arch.energy.global_energy_pj(stats)
                + report.bridge_crossings * arch.energy.e_bridge_pj
            )

    def test_survivable_links_exclude_bridge_cut_sets(self):
        """A 2-chip board's only bridge must never be offered as a fault."""
        board = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        offered = set(survivable_links(board))
        assert offered  # intra-chip mesh redundancy exists
        assert not (offered & set(board.bridge_links))

    def test_random_faults_keep_subclass(self):
        board = _board()
        degraded, chosen = inject_random_faults(board, 2, seed=11)
        assert isinstance(degraded, MultiChipTopology)
        assert len(chosen) == 2


def _record_tuples(stats):
    return [
        (r.uid, r.src_neuron, r.src_node, r.dst_node, r.injected_cycle,
         r.delivered_cycle, r.hops)
        for r in stats.deliveries
    ]


class TestCrossBackendDegraded:
    """Degraded fabrics keep the bit-identical backend contract."""

    def _topologies(self):
        single = mesh_for(9)
        single_deg, _ = inject_random_faults(single, 2, seed=1)
        board = _board(bridge_latency=2)
        chain = bridge_chains(board)[0]
        board_deg = degrade_topology(board, [tuple(chain[:2])])
        return {
            "single-healthy": single,
            "single-degraded": single_deg,
            "multichip-healthy": board,
            "multichip-degraded": board_deg,
        }

    @pytest.mark.parametrize(
        "key",
        [
            "single-healthy",
            "single-degraded",
            "multichip-healthy",
            "multichip-degraded",
        ],
    )
    def test_matrix_bit_identical(self, key):
        topo = self._topologies()[key]
        schedule = synthetic_injections(
            [0.4] * topo.n_attach_points, topo, 100, fanout=3, seed=9
        )
        ref = Interconnect(topo).simulate(schedule.injections)
        fast = FastInterconnect(
            topo, config=NocConfig(backend="fast")
        ).simulate(schedule.injections)
        assert _record_tuples(ref) == _record_tuples(fast)
        assert ref.link_loads == fast.link_loads
        assert summarize(ref, topo) == summarize(fast, topo)

    def test_kernel_and_python_engines_agree_on_degraded(self):
        """The compiled kernel and the pure-Python fallback both detour."""
        topo = self._topologies()["multichip-degraded"]
        schedule = synthetic_injections(
            [0.4] * topo.n_attach_points, topo, 80, fanout=2, seed=5
        )
        ref = Interconnect(topo).simulate(schedule.injections)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        if fast._ck is not None:
            assert _record_tuples(ref) == _record_tuples(
                fast.simulate(schedule.injections)
            )
        fast._ck = None  # force the pure-Python engine
        assert _record_tuples(ref) == _record_tuples(
            fast.simulate(schedule.injections)
        )

    def test_default_routing_detours_automatically(self):
        """No caller-side routing override is needed for degraded kinds."""
        topo, _ = inject_random_faults(mesh(3), 2, seed=1)
        injections = [
            Injection(cycle=c, src_node=0, dst_nodes=(8,), src_neuron=0,
                      uid=c)
            for c in range(10)
        ]
        stats = Interconnect(topo).simulate(injections)
        assert stats.undelivered_count == 0


class TestFaultSetUnion:
    def test_union_merges_all_fields(self):
        a = FaultSet(dead_links=[(0, 1)], dead_routers=[3],
                     faulty_crossbars=[0])
        b = FaultSet(dead_links=[(1, 2)], faulty_crossbars=[5])
        u = a | b
        assert u.dead_links == frozenset({(0, 1), (1, 2)})
        assert u.dead_routers == frozenset({3})
        assert u.faulty_crossbars == frozenset({0, 5})

    def test_union_keeps_worst_bridge_degradation(self):
        a = FaultSet(degraded_bridges={0: 2, 1: 1})
        b = FaultSet(degraded_bridges={0: 1, 2: 4})
        assert (a | b).degraded_bridges == {0: 2, 1: 1, 2: 4}

    def test_union_with_non_faultset_rejected(self):
        with pytest.raises(TypeError):
            FaultSet() | 3


class TestFaultWindow:
    def test_half_open_interval(self):
        w = FaultWindow(FaultSet(dead_routers=[1]), arrive=2.0, clear=5.0)
        assert not w.active_at(1.9)
        assert w.active_at(2.0)
        assert w.active_at(4.9)
        assert not w.active_at(5.0)

    def test_permanent_window_never_clears(self):
        w = FaultWindow(FaultSet(dead_routers=[1]), arrive=3.0)
        assert w.active_at(1e9)
        assert not w.active_at(2.9)

    def test_clear_before_arrive_rejected(self):
        with pytest.raises(ValueError, match="clear after"):
            FaultWindow(FaultSet(), arrive=5.0, clear=5.0)


class TestFaultTimeline:
    def _timeline(self):
        return FaultTimeline([
            FaultWindow(FaultSet(dead_links=[(0, 1)]), arrive=0.0,
                        clear=10.0),
            FaultWindow(FaultSet(faulty_crossbars=[2]), arrive=5.0,
                        clear=15.0),
            FaultWindow(FaultSet(dead_routers=[4]), arrive=20.0),
        ])

    def test_active_union_and_edges(self):
        tl = self._timeline()
        assert tl.edges() == [0.0, 5.0, 10.0, 15.0, 20.0]
        at7 = tl.active_at(7.0)
        assert at7.dead_links == frozenset({(0, 1)})
        assert at7.faulty_crossbars == frozenset({2})
        assert not tl.active_at(16.0)
        assert tl.crossbars_at(7.0) == frozenset({2})
        assert tl.crossbars_at(12.0) == frozenset({2})

    def test_topology_identity_when_no_structural_fault(self):
        """Healed (or crossbar-only) instants hand back the same object,
        so the re-admitted fabric is trivially bit-identical."""
        tl = self._timeline()
        topo = mesh(3)
        topo.attach_points.remove(4)  # free router 4 for the dead window
        assert tl.topology_at(topo, 12.0) is topo  # crossbar fault only
        assert tl.topology_at(topo, 16.0) is topo  # fully healed
        degraded = tl.topology_at(topo, 3.0)
        assert degraded is not topo
        assert not degraded.graph.has_edge(0, 1)
        dead = tl.topology_at(topo, 25.0)
        assert 4 not in dead.graph

    def test_describe(self):
        text = self._timeline().describe()
        assert "3 windows" in text
        assert "1 permanent" in text
        assert "5 edges" in text

    def test_windows_coerced_to_tuple(self):
        tl = FaultTimeline([FaultWindow(FaultSet(dead_routers=[0]))])
        assert isinstance(tl.windows, tuple)


class TestTransientCrossBackend:
    """Arrive -> clear -> re-admit must stay bit-identical everywhere."""

    def _phase_stats(self, topo, schedule):
        ref = Interconnect(topo).simulate(schedule.injections)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        engines = {"reference": ref,
                   "fast": fast.simulate(schedule.injections)}
        if fast._ck is not None:
            fast._ck = None  # pure-Python engine of the fast backend
            engines["fast-python"] = fast.simulate(schedule.injections)
        return engines

    @pytest.mark.parametrize("board", [False, True])
    def test_transient_cycle_bit_identical(self, board):
        if board:
            topo = _board(bridge_latency=2)
            chain = bridge_chains(topo)[0]
            faults = FaultSet(dead_links=[tuple(chain[:2])])
        else:
            topo = mesh_for(9)
            link = survivable_links(topo)[0]
            faults = FaultSet(dead_links=[link])
        tl = FaultTimeline([FaultWindow(faults, arrive=1.0, clear=2.0)])
        schedule = synthetic_injections(
            [0.4] * topo.n_attach_points, topo, 80, fanout=3, seed=7
        )
        # Phase snapshots: healthy, degraded, healed.
        phases = {t: tl.topology_at(topo, t) for t in (0.0, 1.5, 3.0)}
        assert phases[3.0] is topo  # re-admitted, same object
        baseline = {}
        for time, phase_topo in phases.items():
            engines = self._phase_stats(phase_topo, schedule)
            records = {k: _record_tuples(s) for k, s in engines.items()}
            first = next(iter(records.values()))
            assert all(r == first for r in records.values()), (
                f"backends disagree at t={time}"
            )
            baseline[time] = first
        # The healed fabric reproduces the pre-fault packet records.
        assert baseline[3.0] == baseline[0.0]
        # The degraded phase detours: records differ from healthy.
        assert baseline[1.5] != baseline[0.0]
