"""Tests for link-fault injection and rerouting."""

import pytest

from repro.noc.faults import (
    degrade_topology,
    inject_random_faults,
    survivable_links,
)
from repro.noc.interconnect import Interconnect
from repro.noc.packet import Injection
from repro.noc.topology import mesh, torus, tree


class TestDegradeTopology:
    def test_removes_link(self):
        topo = mesh(3)
        degraded = degrade_topology(topo, [(0, 1)])
        assert not degraded.graph.has_edge(0, 1)
        assert "degraded" in degraded.kind

    def test_original_untouched(self):
        topo = mesh(3)
        degrade_topology(topo, [(0, 1)])
        assert topo.graph.has_edge(0, 1)

    def test_missing_link_rejected(self):
        with pytest.raises(ValueError, match="does not exist"):
            degrade_topology(mesh(3), [(0, 8)])

    def test_disconnecting_fault_rejected(self):
        topo = tree(4)  # every tree link is a bridge
        link = next(iter(topo.graph.edges))
        with pytest.raises(ValueError, match="disconnects"):
            degrade_topology(topo, [link])


class TestSurvivableLinks:
    def test_tree_has_none(self):
        assert survivable_links(tree(8)) == []

    def test_mesh_has_some(self):
        assert len(survivable_links(mesh(3))) > 0

    def test_torus_all_survivable(self):
        topo = torus(3)
        assert len(survivable_links(topo)) == topo.graph.number_of_edges()


class TestInjectRandomFaults:
    def test_requested_count(self):
        degraded, chosen = inject_random_faults(mesh(4), 3, seed=0)
        assert len(chosen) == 3
        assert (degraded.graph.number_of_edges()
                == mesh(4).graph.number_of_edges() - 3)

    def test_deterministic(self):
        _, a = inject_random_faults(mesh(4), 2, seed=5)
        _, b = inject_random_faults(mesh(4), 2, seed=5)
        assert a == b

    def test_tree_cannot_absorb_faults(self):
        with pytest.raises(ValueError, match="cannot survive"):
            inject_random_faults(tree(4), 1, seed=0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inject_random_faults(mesh(3), -1)


class TestReroutedTraffic:
    def test_traffic_survives_fault(self):
        """All packets still deliver after a fault, with >= latency."""
        topo = mesh(3)
        injections = [
            Injection(cycle=c, src_node=0, dst_nodes=(8,), src_neuron=0,
                      uid=c)
            for c in range(10)
        ]
        healthy = Interconnect(topo).simulate(injections)

        degraded, _ = inject_random_faults(topo, 2, seed=1)
        # Shortest-path routing adapts to the degraded graph.
        rerouted = Interconnect(
            degraded, routing=routing_for_degraded(degraded)
        ).simulate(injections)
        assert rerouted.undelivered_count == 0
        assert rerouted.mean_latency() >= healthy.mean_latency()


def routing_for_degraded(topology):
    """Degraded meshes lose grid regularity: force shortest-path routing."""
    from repro.noc.routing import shortest_path_routing
    return shortest_path_routing(topology)
