"""Multi-chip topology: construction, classification, and equivalence.

The headline acceptance contract: on a 2-chip mesh under deterministic
routing, the fast and reference backends produce bit-identical results
(delivery records, cycle counts, link loads, summaries), exactly as on
single-chip fabrics — bridges are expanded into relay-router chains, so
neither engine needs multi-chip knowledge.
"""

from __future__ import annotations

import warnings

import pytest

from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.multichip import (
    RELAY_CHIP,
    MultiChipTopology,
    chip_breakdown,
    chip_distance_matrix,
    multichip,
)
from repro.noc.parallel import ParallelNocSimulator, summarize
from repro.noc.routing import routing_for
from repro.noc.topology import build_topology
from repro.noc.traffic import synthetic_injections


def record_tuples(stats):
    return [
        (
            r.uid,
            r.src_neuron,
            r.src_node,
            r.dst_node,
            r.injected_cycle,
            r.delivered_cycle,
            r.hops,
        )
        for r in stats.deliveries
    ]


def assert_identical(ref_stats, fast_stats):
    assert record_tuples(ref_stats) == record_tuples(fast_stats)
    assert ref_stats.cycles_run == fast_stats.cycles_run
    assert ref_stats.link_loads == fast_stats.link_loads
    assert ref_stats.peak_buffer_occupancy == fast_stats.peak_buffer_occupancy
    assert ref_stats.n_injected == fast_stats.n_injected
    assert ref_stats.n_expected_deliveries == fast_stats.n_expected_deliveries
    assert ref_stats.undelivered_count == fast_stats.undelivered_count


class TestBuilder:
    @pytest.mark.parametrize("kind", ["mesh", "tree", "star", "torus"])
    def test_families_compose(self, kind):
        topo = multichip(8, n_chips=2, chip_kind=kind, bridge_latency=2)
        assert isinstance(topo, MultiChipTopology)
        assert topo.kind == "multichip"
        assert topo.n_attach_points == 8
        assert topo.n_chips == 2
        assert topo.n_bridges == 1

    def test_crossbars_split_evenly(self):
        topo = multichip(9, n_chips=4, chip_kind="mesh")
        assert topo.chip_of_crossbar == [0, 0, 0, 1, 1, 2, 2, 3, 3]
        for chip in range(4):
            assert topo.crossbars_of_chip(chip) == [
                k for k, c in enumerate(topo.chip_of_crossbar) if c == chip
            ]

    def test_relay_chain_length(self):
        flat = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=1)
        long = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=5)
        # One bridge: latency L adds L - 1 relay routers.
        assert long.n_routers == flat.n_routers + 4
        relays = [n for n, c in long.chip_of_router.items() if c == RELAY_CHIP]
        assert len(relays) == 4
        for relay in relays:
            assert long.graph.degree(relay) == 2
            assert relay not in long.attach_points

    def test_bridge_latency_prices_cross_chip_distance(self):
        for latency in (1, 3):
            topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=latency)
            routing = routing_for(topo)
            cross = min(
                routing.distance(a, b)
                for a in topo.routers_of_chip(0)
                for b in topo.routers_of_chip(1)
            )
            assert cross == latency

    def test_grid_of_four_chips_has_four_bridges(self):
        topo = multichip(16, n_chips=4, chip_kind="mesh")
        assert topo.n_bridges == 4  # 2x2 chip grid: 2 horizontal + 2 vertical
        assert len(topo.bridge_entry_links) == 8

    def test_three_chips_skip_wrapped_adjacency(self):
        # Chips 0,1 on row 0 and chip 2 on row 1: bridge 0-1 and 0-2 only;
        # 1-2 are diagonal neighbors and must not be bridged.
        topo = multichip(6, n_chips=3, chip_kind="tree")
        assert topo.n_bridges == 2

    def test_single_chip_has_no_bridges(self):
        topo = multichip(4, n_chips=1, chip_kind="mesh")
        assert topo.n_bridges == 0
        assert topo.bridge_links == frozenset()
        assert set(topo.chip_of_router.values()) == {0}

    def test_positions_offset_per_chip(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        xs0 = [topo.positions[n][0] for n in topo.routers_of_chip(0)]
        xs1 = [topo.positions[n][0] for n in topo.routers_of_chip(1)]
        assert max(xs0) < min(xs1)

    def test_unpositioned_chips_have_no_positions(self):
        assert multichip(8, n_chips=2, chip_kind="tree").positions == {}

    def test_more_chips_than_crossbars_rejected(self):
        with pytest.raises(ValueError, match="at least one crossbar"):
            multichip(3, n_chips=4)

    def test_nested_multichip_rejected(self):
        with pytest.raises(ValueError, match="cannot themselves"):
            multichip(8, n_chips=2, chip_kind="multichip")

    def test_zero_bridge_latency_rejected(self):
        with pytest.raises(ValueError):
            multichip(8, n_chips=2, bridge_latency=0)

    def test_factory_kwargs(self):
        topo = build_topology(
            "multichip", 12, n_chips=3, chip_kind="tree", bridge_latency=2
        )
        assert isinstance(topo, MultiChipTopology)
        assert topo.n_chips == 3
        assert topo.chip_kind == "tree"
        assert topo.bridge_latency == 2

    def test_describe_mentions_chips_and_bridges(self):
        text = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=3).describe()
        assert "2 x mesh" in text
        assert "bridges" in text
        assert "latency 3" in text

    def test_chip_distance_matrix(self):
        topo = multichip(16, n_chips=4, chip_kind="mesh", bridge_latency=2)
        dist = chip_distance_matrix(topo)
        assert dist.shape == (4, 4)
        assert (dist.diagonal() == 0).all()
        # Diagonal chip pairs route over two bridges: strictly farther.
        assert dist[0, 3] > dist[0, 1]
        assert dist[1, 2] > dist[1, 3]


class TestLoadClassification:
    def _simulated(self, topo, seed=9):
        schedule = synthetic_injections(
            [0.3] * topo.n_attach_points, topo, 100, fanout=3, seed=seed
        )
        stats = FastInterconnect(topo, config=NocConfig(backend="fast")).simulate(
            schedule.injections
        )
        assert stats.undelivered_count == 0
        return stats

    def test_hops_partition_into_intra_and_inter(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=3)
        stats = self._simulated(topo)
        per_chip = topo.per_chip_hops(stats.link_loads)
        inter = topo.inter_chip_hops(stats.link_loads)
        assert sum(per_chip.values()) + inter == stats.total_hops()
        assert inter > 0

    def test_crossings_times_latency_equals_inter_hops(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=3)
        stats = self._simulated(topo)
        crossings = topo.bridge_crossings(stats.link_loads)
        assert crossings > 0
        assert topo.inter_chip_hops(stats.link_loads) == crossings * 3

    def test_chip_breakdown_deliveries(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        stats = self._simulated(topo)
        breakdown = chip_breakdown(stats, topo)
        assert (
            breakdown.intra_chip_deliveries + breakdown.inter_chip_deliveries
            == stats.delivered_count
        )
        assert breakdown.total_hops == stats.total_hops()
        # Crossing a bridge can never be faster than staying on-chip here.
        assert breakdown.mean_inter_latency > breakdown.mean_intra_latency
        rows = dict(breakdown.table_rows())
        assert rows["inter-chip hops"] == str(breakdown.inter_chip_hops)

    def test_breakdown_matches_on_both_backends(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        schedule = synthetic_injections([0.3] * 8, topo, 80, fanout=2, seed=4)
        ref = Interconnect(topo).simulate(schedule.injections)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast")).simulate(
            schedule.injections
        )
        assert chip_breakdown(ref, topo) == chip_breakdown(fast, topo)


class TestBackendEquivalence:
    """Acceptance: bit-identical backends on multi-chip fabrics."""

    @pytest.mark.parametrize("multicast", [True, False])
    @pytest.mark.parametrize("buffer_capacity", [1, 8])
    @pytest.mark.parametrize("bridge_latency", [1, 3])
    def test_two_chip_mesh_bit_identical(
        self, multicast, buffer_capacity, bridge_latency
    ):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=bridge_latency)
        schedule = synthetic_injections([0.4] * 8, topo, 120, fanout=3, seed=13)
        ref = Interconnect(
            topo,
            config=NocConfig(multicast=multicast, buffer_capacity=buffer_capacity),
        ).simulate(schedule.injections)
        fast = FastInterconnect(
            topo,
            config=NocConfig(
                multicast=multicast,
                buffer_capacity=buffer_capacity,
                backend="fast",
            ),
        ).simulate(schedule.injections)
        assert_identical(ref, fast)
        assert summarize(ref, topo) == summarize(fast, topo)

    @pytest.mark.parametrize("kind", ["tree", "star", "torus"])
    def test_other_chip_families_bit_identical(self, kind):
        topo = multichip(8, n_chips=2, chip_kind=kind, bridge_latency=2)
        schedule = synthetic_injections([0.4] * 8, topo, 100, fanout=2, seed=5)
        ref = Interconnect(topo).simulate(schedule.injections)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast")).simulate(
            schedule.injections
        )
        assert_identical(ref, fast)

    def test_four_chip_grid_bit_identical(self):
        topo = multichip(16, n_chips=4, chip_kind="mesh", bridge_latency=2)
        schedule = synthetic_injections([0.3] * 16, topo, 100, fanout=3, seed=21)
        ref = Interconnect(topo).simulate(schedule.injections)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast")).simulate(
            schedule.injections
        )
        assert_identical(ref, fast)

    def test_kernel_and_python_engines_agree(self):
        """The C-kernel mask path and the pure-Python engine both hold."""
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        schedule = synthetic_injections([0.4] * 8, topo, 100, fanout=3, seed=8)
        ref = Interconnect(topo).simulate(schedule.injections)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        if fast._ck is not None:
            assert_identical(ref, fast.simulate(schedule.injections))
            fast._ck = None
        assert_identical(ref, fast.simulate(schedule.injections))


class TestSummaries:
    def test_flat_topology_summary_has_zero_breakdown(self):
        topo = build_topology("mesh", 9)
        schedule = synthetic_injections([0.3] * 9, topo, 60, fanout=2, seed=2)
        stats = FastInterconnect(topo, config=NocConfig(backend="fast")).simulate(
            schedule.injections
        )
        with_topo = summarize(stats, topo)
        without = summarize(stats)
        assert with_topo == without
        assert with_topo.inter_chip_hops == 0
        assert with_topo.bridge_crossings == 0
        assert with_topo.intra_chip_hops == with_topo.total_hops

    def test_multichip_summary_breakdown(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        schedule = synthetic_injections([0.3] * 8, topo, 80, fanout=3, seed=3)
        stats = FastInterconnect(topo, config=NocConfig(backend="fast")).simulate(
            schedule.injections
        )
        summary = summarize(stats, topo)
        assert summary.inter_chip_hops > 0
        assert summary.bridge_crossings * 2 == summary.inter_chip_hops
        assert summary.inter_chip_delivered > 0
        assert summary.mean_inter_chip_latency > 0.0
        split_total = summary.intra_chip_hops + summary.inter_chip_hops
        assert split_total == summary.total_hops

    def test_parallel_summaries_match_serial(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        schedules = [
            synthetic_injections([0.3] * 8, topo, 60, fanout=2, seed=s).injections
            for s in range(6)
        ]
        sim = FastInterconnect(topo, config=NocConfig(backend="fast"))
        serial = [summarize(s, topo) for s in sim.simulate_many(schedules)]
        with warnings.catch_warnings():
            # A sandbox without working process pools falls back to the
            # serial path, which must produce the same summaries anyway.
            warnings.simplefilter("ignore", RuntimeWarning)
            with ParallelNocSimulator(sim, workers=2) as parallel:
                sharded = parallel.summarize_many(schedules)
        assert sharded == serial
        assert sharded[0].inter_chip_hops > 0

    def test_topology_pickles_with_chip_metadata(self):
        import pickle

        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=3)
        clone = pickle.loads(pickle.dumps(topo))
        assert isinstance(clone, MultiChipTopology)
        assert clone.chip_of_router == topo.chip_of_router
        assert clone.bridge_links == topo.bridge_links
        assert clone.bridge_entry_links == topo.bridge_entry_links
