"""Tests for adaptive west-first routing and selection strategies."""

import itertools

import pytest

from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.packet import Injection
from repro.noc.routing import west_first_routing, xy_routing
from repro.noc.topology import mesh, tree


class TestWestFirstCandidates:
    def test_west_destination_forces_west(self):
        topo = mesh(3, 3)
        routing = west_first_routing(topo)
        # From (2,2)=8 to (0,0)=0: must move west first.
        cands = routing.candidates(8, 0)
        assert cands == [7]  # (1,2)

    def test_east_and_vertical_are_adaptive(self):
        topo = mesh(3, 3)
        routing = west_first_routing(topo)
        # From (0,0)=0 to (2,2)=8: east and north both admissible.
        cands = set(routing.candidates(0, 8))
        assert cands == {1, 3}

    def test_aligned_destination_single_candidate(self):
        topo = mesh(3, 3)
        routing = west_first_routing(topo)
        assert routing.candidates(0, 2) == [1]   # same row, east
        assert routing.candidates(0, 6) == [3]   # same column, north

    def test_every_candidate_reduces_distance(self):
        topo = mesh(4, 3)
        routing = west_first_routing(topo)
        for here, dst in itertools.permutations(topo.graph.nodes, 2):
            d = routing.distance(here, dst)
            for nxt in routing.candidates(here, dst):
                assert routing.distance(nxt, dst) == d - 1

    def test_all_pairs_deliverable_by_any_choice(self):
        """Following *any* candidate sequence reaches the destination in
        exactly the Manhattan distance."""
        topo = mesh(3, 3)
        routing = west_first_routing(topo)
        for src, dst in itertools.permutations(topo.graph.nodes, 2):
            here, hops = src, 0
            while here != dst:
                here = max(routing.candidates(here, dst))  # adversarial pick
                hops += 1
                assert hops <= routing.distance(src, dst)
            assert hops == routing.distance(src, dst)

    def test_requires_positions(self):
        with pytest.raises(ValueError, match="positions"):
            west_first_routing(tree(4))

    def test_distance_is_manhattan(self):
        topo = mesh(4, 4)
        routing = west_first_routing(topo)
        assert routing.distance(0, 15) == 6


class TestAdaptiveSimulation:
    def _traffic(self, topo):
        nodes = list(topo.graph.nodes)
        return [
            Injection(cycle=c, src_node=nodes[0],
                      dst_nodes=(nodes[-1],), src_neuron=0, uid=c)
            for c in range(20)
        ] + [
            Injection(cycle=c, src_node=nodes[1],
                      dst_nodes=(nodes[-1],), src_neuron=1, uid=100 + c)
            for c in range(20)
        ]

    @pytest.mark.parametrize("selection", ["bufferlevel", "first"])
    def test_delivers_all(self, selection):
        topo = mesh(3, 3)
        ic = Interconnect(topo, routing=west_first_routing(topo),
                          config=NocConfig(selection=selection))
        stats = ic.simulate(self._traffic(topo))
        assert stats.undelivered_count == 0

    def test_adaptive_spreads_load_vs_xy(self):
        """Under congestion, bufferlevel selection uses more distinct
        links than deterministic XY."""
        topo = mesh(3, 3)
        injections = self._traffic(topo)
        xy_stats = Interconnect(topo, routing=xy_routing(topo)).simulate(
            injections
        )
        topo2 = mesh(3, 3)
        ad_stats = Interconnect(
            topo2, routing=west_first_routing(topo2),
            config=NocConfig(selection="bufferlevel"),
        ).simulate(injections)
        assert ad_stats.undelivered_count == 0
        assert len(ad_stats.link_loads) >= len(xy_stats.link_loads)

    def test_latency_still_bounded_below_by_distance(self):
        topo = mesh(3, 3)
        routing = west_first_routing(topo)
        ic = Interconnect(topo, routing=routing)
        stats = ic.simulate(self._traffic(topo))
        for rec in stats.deliveries:
            assert (rec.delivered_cycle - rec.injected_cycle
                    >= routing.distance(rec.src_node, rec.dst_node))

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError, match="selection"):
            NocConfig(selection="coin-flip")
