"""Cross-backend equivalence: fast backend vs the reference oracle.

The fast backend (:mod:`repro.noc.fastsim`, both its pure-Python engine
and the optional compiled kernel) promises *bit-identical* results to
the reference loop under deterministic routing: the same delivery
records, cycle counts, link loads and peak buffer occupancies.  Under
adaptive routing it promises reproducibility and statistical
equivalence.  This suite pins both promises over mesh/torus topologies,
unicast/multicast traffic and tight/roomy buffers, and adds hypothesis
property tests that the fast backend always drains feasible schedules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.fastsim import (
    FastInterconnect,
    build_interconnect,
    simulate_many,
)
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.packet import Injection
from repro.noc.routing import west_first_routing
from repro.noc.topology import build_topology, mesh
from repro.noc.traffic import synthetic_injections


def record_tuples(stats):
    """Delivery records as plain tuples, in delivery order."""
    return [
        (r.uid, r.src_neuron, r.src_node, r.dst_node, r.injected_cycle,
         r.delivered_cycle, r.hops)
        for r in stats.deliveries
    ]


def assert_identical(ref_stats, fast_stats):
    """Bit-for-bit equivalence of everything the metrics layer consumes."""
    assert record_tuples(ref_stats) == record_tuples(fast_stats)
    assert ref_stats.cycles_run == fast_stats.cycles_run
    assert ref_stats.link_loads == fast_stats.link_loads
    assert ref_stats.peak_buffer_occupancy == fast_stats.peak_buffer_occupancy
    assert ref_stats.n_injected == fast_stats.n_injected
    assert (
        ref_stats.n_expected_deliveries == fast_stats.n_expected_deliveries
    )
    assert ref_stats.undelivered_count == fast_stats.undelivered_count


def run_both(topo, injections, **config_kwargs):
    ref = Interconnect(
        topo, config=NocConfig(**config_kwargs)
    ).simulate(injections)
    fast = FastInterconnect(
        topo, config=NocConfig(backend="fast", **config_kwargs)
    ).simulate(injections)
    return ref, fast


class TestDeterministicBitIdentical:
    """The headline contract: the fast backend IS the reference."""

    @pytest.mark.parametrize("kind", ["mesh", "torus"])
    @pytest.mark.parametrize("multicast", [True, False])
    @pytest.mark.parametrize("buffer_capacity", [1, 8])
    def test_matrix(self, kind, multicast, buffer_capacity):
        topo = build_topology(kind, 9)
        schedule = synthetic_injections(
            [0.3] * 9, topo, 150, fanout=3, seed=42
        )
        ref, fast = run_both(
            topo,
            schedule.injections,
            multicast=multicast,
            buffer_capacity=buffer_capacity,
        )
        assert_identical(ref, fast)

    @pytest.mark.parametrize("kind", ["tree", "star"])
    def test_other_topology_families(self, kind):
        topo = build_topology(kind, 8)
        schedule = synthetic_injections([0.4] * 8, topo, 120, fanout=2, seed=3)
        ref, fast = run_both(topo, schedule.injections)
        assert_identical(ref, fast)

    def test_multi_ejection_budget(self):
        topo = build_topology("mesh", 9)
        schedule = synthetic_injections([0.5] * 9, topo, 100, fanout=4, seed=1)
        ref, fast = run_both(
            topo, schedule.injections, ejections_per_cycle=3
        )
        assert_identical(ref, fast)

    def test_deadline_capped_run_matches(self):
        """Undelivered accounting matches when the drain budget is tiny."""
        topo = build_topology("tree", 4)
        schedule = synthetic_injections([0.9] * 4, topo, 50, fanout=3, seed=5)
        ref, fast = run_both(topo, schedule.injections, max_extra_cycles=1)
        assert ref.undelivered_count > 0  # the cap must actually bite
        assert_identical(ref, fast)

    def test_python_engine_without_compiled_kernel(self):
        """The pure-Python engine honors the same contract as the kernel."""
        topo = build_topology("mesh", 9)
        schedule = synthetic_injections([0.4] * 9, topo, 100, fanout=3, seed=8)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        ref_stats = Interconnect(topo).simulate(schedule.injections)
        if fast._ck is not None:
            kernel_stats = fast.simulate(schedule.injections)
            assert_identical(ref_stats, kernel_stats)
        fast._ck = None  # force the pure-Python engine
        assert_identical(ref_stats, fast.simulate(schedule.injections))

    def test_empty_schedule(self):
        topo = build_topology("mesh", 4)
        ref, fast = run_both(topo, [])
        assert_identical(ref, fast)
        assert fast.cycles_run == 0

    def test_idle_gap_fast_forward(self):
        topo = build_topology("tree", 4)
        injections = [
            Injection(cycle=0, src_node=0, dst_nodes=(3,), src_neuron=0),
            Injection(cycle=1_000_000, src_node=0, dst_nodes=(3,), src_neuron=0),
        ]
        ref, fast = run_both(topo, injections)
        assert_identical(ref, fast)


class TestAdaptiveStatisticalEquivalence:
    """Adaptive selection: same deliveries, reproducible, close latency."""

    def _stats_pair(self, selection):
        topo = mesh(4)
        schedule = synthetic_injections(
            [0.4] * 16, topo, 120, fanout=3, seed=11
        )
        ref = Interconnect(
            topo,
            routing=west_first_routing(topo),
            config=NocConfig(selection=selection),
        ).simulate(schedule.injections)
        fast = FastInterconnect(
            topo,
            routing=west_first_routing(topo),
            config=NocConfig(selection=selection, backend="fast"),
        ).simulate(schedule.injections)
        return ref, fast

    def test_bufferlevel_same_delivery_set(self):
        ref, fast = self._stats_pair("bufferlevel")
        assert ref.undelivered_count == 0
        assert fast.undelivered_count == 0
        assert sorted(
            (r.uid, r.dst_node) for r in ref.deliveries
        ) == sorted((r.uid, r.dst_node) for r in fast.deliveries)

    def test_bufferlevel_latency_close(self):
        ref, fast = self._stats_pair("bufferlevel")
        assert fast.mean_latency() == pytest.approx(
            ref.mean_latency(), rel=0.15, abs=2.0
        )

    def test_first_selection_is_bit_identical(self):
        """selection='first' is deterministic even on adaptive tables."""
        ref, fast = self._stats_pair("first")
        assert_identical(ref, fast)

    def test_fast_adaptive_reproducible(self):
        topo = mesh(3)
        schedule = synthetic_injections([0.5] * 9, topo, 80, fanout=2, seed=2)
        runs = [
            FastInterconnect(
                topo,
                routing=west_first_routing(topo),
                config=NocConfig(selection="bufferlevel", backend="fast"),
            ).simulate(schedule.injections)
            for _ in range(2)
        ]
        assert record_tuples(runs[0]) == record_tuples(runs[1])


class TestBatchApi:
    def test_simulate_many_matches_singles(self):
        topo = build_topology("mesh", 9)
        schedules = [
            synthetic_injections([0.3] * 9, topo, 60, fanout=2, seed=s).injections
            for s in range(4)
        ]
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        batch = fast.simulate_many(schedules)
        for injections, stats in zip(schedules, batch):
            single = Interconnect(topo).simulate(injections)
            assert_identical(single, stats)

    def test_module_level_simulate_many(self):
        topo = build_topology("tree", 4)
        schedules = [
            synthetic_injections([0.4] * 4, topo, 40, fanout=2, seed=s).injections
            for s in range(3)
        ]
        batch = simulate_many(topo, schedules)
        assert len(batch) == 3
        for stats in batch:
            assert stats.undelivered_count == 0


class TestFactory:
    def test_backend_selection(self):
        topo = build_topology("mesh", 4)
        assert isinstance(build_interconnect(topo), Interconnect)
        assert isinstance(
            build_interconnect(topo, config=NocConfig(backend="fast")),
            FastInterconnect,
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            NocConfig(backend="warp")

    def test_fast_stats_lazy_deliveries_consistent(self):
        """Aggregates read before materialization must agree with records."""
        topo = build_topology("mesh", 9)
        schedule = synthetic_injections([0.4] * 9, topo, 80, fanout=2, seed=6)
        stats = build_interconnect(
            topo, config=NocConfig(backend="fast")
        ).simulate(schedule.injections)
        count = stats.delivered_count          # columns only
        latencies = stats.latencies()          # columns only
        records = stats.deliveries             # materializes
        assert count == len(records)
        assert np.array_equal(
            latencies,
            np.asarray(
                [r.delivered_cycle - r.injected_cycle for r in records]
            ),
        )


# -- property tests -----------------------------------------------------------


@st.composite
def traffic_scenarios(draw):
    kind = draw(st.sampled_from(["tree", "mesh", "star", "torus"]))
    n_crossbars = draw(st.integers(min_value=2, max_value=8))
    topo = build_topology(kind, n_crossbars)
    n_packets = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    nodes = [topo.node_of_crossbar(k) for k in range(n_crossbars)]
    injections = []
    for uid in range(n_packets):
        src_k = int(rng.integers(0, n_crossbars))
        n_dst = int(rng.integers(1, n_crossbars))
        dst_ks = rng.choice(
            [k for k in range(n_crossbars) if k != src_k],
            size=min(n_dst, n_crossbars - 1),
            replace=False,
        )
        injections.append(
            Injection(
                cycle=int(rng.integers(0, 50)),
                src_node=nodes[src_k],
                dst_nodes=tuple(sorted(nodes[int(k)] for k in dst_ks)),
                src_neuron=src_k,
                uid=uid,
            )
        )
    multicast = draw(st.booleans())
    buffer_capacity = draw(st.integers(min_value=1, max_value=8))
    return topo, injections, NocConfig(
        multicast=multicast, buffer_capacity=buffer_capacity, backend="fast"
    )


@given(traffic_scenarios())
@settings(max_examples=50, deadline=None)
def test_fast_backend_always_drains_feasible_schedules(scenario):
    """No feasible schedule may ever report undelivered packets."""
    topo, injections, config = scenario
    stats = FastInterconnect(topo, config=config).simulate(injections)
    assert stats.undelivered_count == 0
    assert stats.delivered_count == stats.n_expected_deliveries


@given(traffic_scenarios())
@settings(max_examples=25, deadline=None)
def test_fast_backend_matches_reference_on_random_scenarios(scenario):
    """Bit-for-bit against the oracle on arbitrary feasible traffic."""
    topo, injections, config = scenario
    ref = Interconnect(
        topo,
        config=NocConfig(
            multicast=config.multicast,
            buffer_capacity=config.buffer_capacity,
        ),
    ).simulate(injections)
    fast = FastInterconnect(topo, config=config).simulate(injections)
    assert_identical(ref, fast)


@given(traffic_scenarios())
@settings(max_examples=25, deadline=None)
def test_fast_backend_respects_buffer_capacity(scenario):
    topo, injections, config = scenario
    stats = FastInterconnect(topo, config=config).simulate(injections)
    assert stats.peak_buffer_occupancy <= config.buffer_capacity
