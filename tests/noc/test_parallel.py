"""Process-parallel sharded ``simulate_many`` (repro.noc.parallel).

The contract under test: sharding a batch of injection schedules across
worker processes returns *exactly* the summaries the serial path
produces — same values, same order — for every worker count and chunk
size, and any failure to use a pool degrades to serial with one warning.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.noc._ckernel import kernel_disabled
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.parallel import (
    ParallelNocSimulator,
    ScheduleSummary,
    parallel_simulate_many,
    resolve_workers,
    summarize,
)
from repro.noc.topology import mesh, tree
from repro.noc.traffic import synthetic_injections


def _pool_available() -> bool:
    """Can this host start a process pool at all?

    Sandboxed runners may forbid fork/sem_open; there the sharded paths
    legitimately warn and fall back to serial, so the no-unexpected-
    warnings escalation below must not apply.
    """
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(os.getpid).result(timeout=30) > 0
    except Exception:
        return False


POOL_AVAILABLE = _pool_available()

# Where pools work, any RuntimeWarning (i.e. an unexpected serial
# fallback) is a hard failure; where they don't, the fallback is the
# designed behavior and the tests pass through the serial path.
pytestmark = (
    [pytest.mark.filterwarnings("error::RuntimeWarning")]
    if POOL_AVAILABLE
    else []
)


def _swarm_schedules(topology, n_schedules, seed0=0, duration=60, fanout=2):
    """A batch of distinct synthetic schedules over one topology."""
    rates = [0.3] * topology.n_attach_points
    return [
        synthetic_injections(
            rates, topology, duration, fanout=fanout, seed=seed0 + i
        ).injections
        for i in range(n_schedules)
    ]


@pytest.fixture(scope="module")
def mesh_topology():
    return mesh(3)


@pytest.fixture(scope="module")
def mesh_schedules(mesh_topology):
    return _swarm_schedules(mesh_topology, 10)


@pytest.fixture(scope="module")
def serial_summaries(mesh_topology, mesh_schedules):
    sim = FastInterconnect(mesh_topology, config=NocConfig(backend="fast"))
    return [summarize(s) for s in sim.simulate_many(mesh_schedules)]


class TestResolveWorkers:
    def test_auto_and_zero_mean_cpu_count(self):
        import os

        expected = max(1, os.cpu_count() or 1)
        assert resolve_workers("auto") == expected
        assert resolve_workers("AUTO") == expected
        assert resolve_workers(0) == expected
        assert resolve_workers(None) == expected

    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers("3") == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-2)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers("many")


class TestSummarize:
    def test_matches_stats_queries(self, mesh_topology, mesh_schedules):
        sim = FastInterconnect(mesh_topology)
        stats = sim.simulate(mesh_schedules[0])
        s = summarize(stats)
        assert s.n_injected == stats.n_injected
        assert s.n_expected == stats.n_expected_deliveries
        assert s.delivered == stats.delivered_count
        assert s.total_hops == stats.total_hops()
        assert s.undelivered == stats.undelivered_count
        assert s.max_latency == stats.max_latency()
        assert s.mean_latency == pytest.approx(stats.mean_latency())
        assert s.cycles_run == stats.cycles_run
        assert s.peak_buffer_occupancy == stats.peak_buffer_occupancy

    def test_reference_backend_agrees(self, mesh_topology, mesh_schedules):
        ref = summarize(Interconnect(mesh_topology).simulate(mesh_schedules[0]))
        fast = summarize(FastInterconnect(mesh_topology).simulate(mesh_schedules[0]))
        assert ref == fast

    def test_empty_schedule(self, mesh_topology):
        s = summarize(FastInterconnect(mesh_topology).simulate([]))
        assert s == ScheduleSummary(0, 0, 0, 0, 0, 0, 0, 0)
        assert s.mean_latency == 0.0


class TestDeterminismMatrix:
    """Same swarm, any workers x chunk_size -> identical summaries."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3, 7])
    def test_bit_identical_to_serial(
        self, mesh_topology, mesh_schedules, serial_summaries, workers, chunk_size
    ):
        result = parallel_simulate_many(
            mesh_topology,
            mesh_schedules,
            workers=workers,
            chunk_size=chunk_size,
        )
        assert result == serial_summaries

    def test_tree_topology_and_unicast(self):
        topo = tree(4)
        schedules = _swarm_schedules(topo, 6, seed0=42)
        cfg = NocConfig(backend="fast", multicast=False)
        sim = FastInterconnect(topo, config=cfg)
        serial = [summarize(s) for s in sim.simulate_many(schedules)]
        sharded = parallel_simulate_many(topo, schedules, config=cfg, workers=3)
        assert sharded == serial

    def test_pool_reuse_across_batches(
        self, mesh_topology, mesh_schedules, serial_summaries
    ):
        with ParallelNocSimulator(mesh_topology, workers=2) as sim:
            assert sim.summarize_many(mesh_schedules) == serial_summaries
            assert sim.summarize_many(mesh_schedules) == serial_summaries

    def test_single_schedule_short_circuits(
        self, mesh_topology, mesh_schedules, serial_summaries
    ):
        with ParallelNocSimulator(mesh_topology, workers=4) as sim:
            assert sim.summarize_many(mesh_schedules[:1]) == serial_summaries[:1]
            assert sim._pool is None  # batch of one never starts a pool


class TestSerialFallback:
    def test_pool_failure_warns_once_and_matches_serial(
        self, monkeypatch, mesh_topology, mesh_schedules, serial_summaries
    ):
        import repro.noc.parallel as parallel_mod

        def boom(*args, **kwargs):
            raise PermissionError("sem_open blocked by sandbox")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        sim = ParallelNocSimulator(mesh_topology, workers=2)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            assert sim.summarize_many(mesh_schedules) == serial_summaries
        # Once broken, stays serial — and silent — for later batches.
        assert sim.summarize_many(mesh_schedules) == serial_summaries

    def test_worker_crash_falls_back(
        self, mesh_topology, mesh_schedules, serial_summaries
    ):
        class Exploding:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise OSError("fork failed")

            def shutdown(self, **kwargs):
                pass

        sim = ParallelNocSimulator(mesh_topology, workers=2)
        sim._pool = Exploding()
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            assert sim.summarize_many(mesh_schedules) == serial_summaries


class TestPickling:
    def test_fastinterconnect_roundtrip(self, mesh_topology, mesh_schedules):
        sim = FastInterconnect(mesh_topology, config=NocConfig(backend="fast"))
        clone = pickle.loads(pickle.dumps(sim))
        original = [summarize(s) for s in sim.simulate_many(mesh_schedules)]
        rebuilt = [summarize(s) for s in clone.simulate_many(mesh_schedules)]
        assert original == rebuilt

    def test_roundtrip_keeps_config(self, mesh_topology):
        cfg = NocConfig(backend="fast", buffer_capacity=2, multicast=False)
        clone = pickle.loads(pickle.dumps(FastInterconnect(mesh_topology, config=cfg)))
        assert clone.config == cfg


class TestKernelEscapeHatch:
    def test_both_env_names_disable(self, monkeypatch):
        monkeypatch.delenv("REPRO_NOC_NO_CKERNEL", raising=False)
        monkeypatch.delenv("REPRO_NO_CKERNEL", raising=False)
        assert not kernel_disabled()
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
        assert kernel_disabled()
        monkeypatch.delenv("REPRO_NO_CKERNEL")
        monkeypatch.setenv("REPRO_NOC_NO_CKERNEL", "1")
        assert kernel_disabled()


class TestValidation:
    def test_spec_and_instance_are_exclusive(self, mesh_topology):
        sim = FastInterconnect(mesh_topology)
        with pytest.raises(ValueError, match="not both"):
            ParallelNocSimulator(sim, config=NocConfig())

    def test_bad_chunk_size(self, mesh_topology):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelNocSimulator(mesh_topology, workers=2, chunk_size=0)
