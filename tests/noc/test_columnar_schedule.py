"""Columnar schedule pipeline: builder, batch, and >63-router kernel.

Three equivalence contracts are pinned here:

1. **Columnar vs legacy builder** — ``build_injections`` (vectorized,
   columnar) must produce exactly the ``Injection`` stream of the
   row-oriented reference builder, and simulating either representation
   on the fast backend must be bit-identical to the reference loop,
   across every topology family and both multicast modes.
2. **Batch vs per-particle** — ``build_injections_batch`` must equal N
   independent ``build_injections`` calls, array for array.
3. **Multi-word masks** — fabrics past 63 routers (where destination
   masks span several uint64 words) must run through the compiled
   kernel bit-identically to the reference backend, and the pure-Python
   engine must honor the same contract when the kernel is absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc._ckernel import kernel_disabled
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.parallel import ParallelNocSimulator, summarize
from repro.noc.topology import build_topology, mesh_for
from repro.noc.traffic import (
    ColumnarSchedule,
    build_injections,
    build_injections_batch,
    build_injections_reference,
    dense_node_ids,
    synthetic_injections,
)
from repro.snn.graph import SpikeGraph


def record_tuples(stats):
    return [
        (
            r.uid,
            r.src_neuron,
            r.src_node,
            r.dst_node,
            r.injected_cycle,
            r.delivered_cycle,
            r.hops,
        )
        for r in stats.deliveries
    ]


def assert_identical(ref_stats, fast_stats):
    assert record_tuples(ref_stats) == record_tuples(fast_stats)
    assert ref_stats.cycles_run == fast_stats.cycles_run
    assert ref_stats.link_loads == fast_stats.link_loads
    assert ref_stats.peak_buffer_occupancy == fast_stats.peak_buffer_occupancy
    assert ref_stats.n_injected == fast_stats.n_injected
    assert ref_stats.n_expected_deliveries == fast_stats.n_expected_deliveries
    assert ref_stats.undelivered_count == fast_stats.undelivered_count


def random_graph(n_neurons, n_edges, seed, t_max=30.0, max_spikes=5):
    rng = np.random.default_rng(seed)
    spikes = [
        np.sort(rng.uniform(0.0, t_max, int(rng.integers(0, max_spikes + 1))))
        for _ in range(n_neurons)
    ]
    return SpikeGraph.from_edges(
        n_neurons,
        rng.integers(0, n_neurons, n_edges),
        rng.integers(0, n_neurons, n_edges),
        np.ones(n_edges),
        spike_times=spikes,
    )


TOPOLOGIES = [("mesh", 9), ("tree", 8), ("star", 6), ("torus", 9), ("multichip", 8)]


class TestColumnarVsLegacyBuilder:
    @pytest.mark.parametrize("kind,n_crossbars", TOPOLOGIES)
    def test_identical_injection_stream(self, kind, n_crossbars):
        topo = build_topology(kind, n_crossbars)
        graph = random_graph(40, 150, seed=3)
        assignment = np.random.default_rng(7).integers(0, n_crossbars, 40)
        columnar = build_injections(graph, assignment, topo)
        legacy = build_injections_reference(graph, assignment, topo)
        assert columnar.injections == legacy.injections
        assert columnar.n_packets == legacy.n_packets
        assert columnar.n_source_neurons == legacy.n_source_neurons
        assert columnar.n_spike_events == legacy.n_spike_events
        assert columnar.duration_cycles() == legacy.duration_cycles()

    @pytest.mark.parametrize("kind,n_crossbars", TOPOLOGIES)
    @pytest.mark.parametrize("multicast", [True, False])
    def test_bit_identical_simulation(self, kind, n_crossbars, multicast):
        topo = build_topology(kind, n_crossbars)
        graph = random_graph(40, 150, seed=11)
        assignment = np.random.default_rng(5).integers(0, n_crossbars, 40)
        columnar = build_injections(graph, assignment, topo)
        legacy = build_injections_reference(graph, assignment, topo)
        fast = FastInterconnect(
            topo, config=NocConfig(backend="fast", multicast=multicast)
        )
        from_columnar = fast.simulate(columnar)
        from_rows = fast.simulate(legacy.injections)
        oracle = Interconnect(
            topo, config=NocConfig(multicast=multicast)
        ).simulate(legacy.injections)
        assert_identical(oracle, from_columnar)
        assert_identical(oracle, from_rows)

    def test_mask_bits_follow_sorted_node_ids(self):
        topo = build_topology("tree", 8)  # leaves 0..7, internal above
        graph = random_graph(20, 60, seed=2)
        assignment = np.random.default_rng(1).integers(0, 8, 20)
        schedule = build_injections(graph, assignment, topo)
        assert np.array_equal(schedule.node_ids, dense_node_ids(topo))
        for inj, counts in zip(
            schedule.injections, schedule.destination_counts().tolist()
        ):
            assert len(inj.dst_nodes) == counts
            assert inj.src_node not in inj.dst_nodes

    def test_empty_when_everything_local(self):
        topo = build_topology("star", 4)
        graph = random_graph(10, 30, seed=4)
        schedule = build_injections(graph, np.zeros(10, dtype=int), topo)
        assert schedule.n_packets == 0
        assert schedule.duration_cycles() == 0
        assert schedule.injections == []
        stats = FastInterconnect(
            topo, config=NocConfig(backend="fast")
        ).simulate(schedule)
        assert stats.n_injected == 0 and stats.cycles_run == 0

    def test_wrong_length_rejected(self):
        topo = build_topology("star", 4)
        graph = random_graph(10, 30, seed=4)
        with pytest.raises(ValueError, match="neurons"):
            build_injections(graph, np.zeros(7, dtype=int), topo)

    def test_negative_spike_time_rejected_at_build(self):
        topo = build_topology("star", 4)
        graph = random_graph(10, 30, seed=4)
        graph.spike_times[0] = np.array([-1.0, 2.0])
        assignment = np.arange(10) % 4  # neuron 0 has remote targets
        with pytest.raises(ValueError, match="negative injection cycle"):
            build_injections(graph, assignment, topo)

    def test_unsorted_hand_built_schedule_rejected(self):
        topo = build_topology("mesh", 4)
        graph = random_graph(12, 40, seed=6)
        assignment = np.random.default_rng(8).integers(0, 4, 12)
        schedule = build_injections(graph, assignment, topo)
        if schedule.n_packets < 2 or schedule.cycle[0] == schedule.cycle[-1]:
            pytest.skip("workload produced too few distinct cycles")
        dirty = ColumnarSchedule(
            cycle=schedule.cycle[::-1].copy(),
            src_node=schedule.src_node,
            src_neuron=schedule.src_neuron,
            uid=schedule.uid,
            dst_words=schedule.dst_words,
            node_ids=schedule.node_ids,
            cycles_per_ms=schedule.cycles_per_ms,
            n_source_neurons=schedule.n_source_neurons,
            n_spike_events=schedule.n_spike_events,
        )
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        with pytest.raises(ValueError, match="sorted ascending"):
            fast.simulate(dirty)

    def test_negative_cluster_rejected(self):
        topo = build_topology("star", 4)
        graph = random_graph(10, 30, seed=4)
        assignment = np.zeros(10, dtype=int)
        assignment[3] = -1  # would silently wrap via negative indexing
        with pytest.raises(ValueError, match="negative cluster"):
            build_injections(graph, assignment, topo)

    def test_hand_built_schedule_sanitized_like_reference(self):
        """Self-destination bits are stripped, empty rows dropped."""
        topo = build_topology("mesh", 4)
        graph = random_graph(12, 40, seed=6)
        assignment = np.random.default_rng(8).integers(0, 4, 12)
        schedule = build_injections(graph, assignment, topo)
        if schedule.n_packets < 2:
            pytest.skip("workload produced too few packets")
        words = schedule.dst_words.copy()
        src_idx = np.searchsorted(schedule.node_ids, schedule.src_node)
        words[0, src_idx[0] >> 6] |= np.uint64(1) << np.uint64(src_idx[0] & 63)
        words[1] = 0  # an empty destination set
        dirty = ColumnarSchedule(
            cycle=schedule.cycle,
            src_node=schedule.src_node,
            src_neuron=schedule.src_neuron,
            uid=schedule.uid,
            dst_words=words,
            node_ids=schedule.node_ids,
            cycles_per_ms=schedule.cycles_per_ms,
            n_source_neurons=schedule.n_source_neurons,
            n_spike_events=schedule.n_spike_events,
        )
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        oracle = Interconnect(topo).simulate(dirty.injections)
        assert_identical(oracle, fast.simulate(dirty))

    def test_foreign_topology_rejected_by_fast_backend(self):
        graph = random_graph(20, 60, seed=9)
        assignment = np.random.default_rng(3).integers(0, 6, 20)
        schedule = build_injections(graph, assignment, build_topology("star", 6))
        other = FastInterconnect(
            build_topology("mesh", 9), config=NocConfig(backend="fast")
        )
        with pytest.raises(ValueError, match="different topology"):
            other.simulate(schedule)


class TestBatchBuilder:
    def test_matches_per_particle_builds(self):
        topo = build_topology("mesh", 16)
        graph = random_graph(60, 300, seed=13)
        swarm = np.random.default_rng(17).integers(0, 16, (8, 60))
        batch = build_injections_batch(graph, swarm, topo)
        assert len(batch) == 8
        for row, schedule in zip(swarm, batch):
            single = build_injections(graph, row, topo)
            assert np.array_equal(schedule.cycle, single.cycle)
            assert np.array_equal(schedule.src_node, single.src_node)
            assert np.array_equal(schedule.src_neuron, single.src_neuron)
            assert np.array_equal(schedule.uid, single.uid)
            assert np.array_equal(schedule.dst_words, single.dst_words)
            legacy = build_injections_reference(graph, row, topo)
            assert schedule.injections == legacy.injections
            assert schedule.n_source_neurons == legacy.n_source_neurons

    def test_single_row_promotes(self):
        topo = build_topology("tree", 4)
        graph = random_graph(16, 40, seed=19)
        row = np.random.default_rng(23).integers(0, 4, 16)
        (schedule,) = build_injections_batch(graph, row, topo)
        assert isinstance(schedule, ColumnarSchedule)
        assert schedule.injections == build_injections(graph, row, topo).injections

    def test_parallel_summaries_match_serial(self):
        topo = build_topology("mesh", 9)
        graph = random_graph(40, 160, seed=29)
        swarm = np.random.default_rng(31).integers(0, 9, (6, 40))
        batch = build_injections_batch(graph, swarm, topo)
        cfg = NocConfig(backend="fast")
        serial_sim = FastInterconnect(topo, config=cfg)
        serial = [summarize(s, topo) for s in serial_sim.simulate_many(batch)]
        with ParallelNocSimulator(topo, config=cfg, workers=2) as sim:
            parallel = sim.summarize_many(batch)
        assert parallel == serial


class TestMultiWordFabrics:
    """>63 routers: masks span several words; the mw kernel engages."""

    def _case(self, n_crossbars, seed):
        topo = mesh_for(n_crossbars)
        graph = random_graph(100, 400, seed=seed, max_spikes=3)
        assignment = np.random.default_rng(seed + 1).integers(0, n_crossbars, 100)
        return topo, build_injections(graph, assignment, topo)

    @pytest.mark.parametrize("n_crossbars", [70, 256])
    def test_compiled_multiword_matches_reference(self, n_crossbars):
        topo, schedule = self._case(n_crossbars, seed=37)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        assert fast._n_words == (topo.n_routers + 63) // 64 > 1
        if not kernel_disabled():
            # A compiler is baked into CI images; the kernel must engage
            # on large fabrics now instead of silently dropping to
            # Python.
            assert fast._ck is not None
        ref = Interconnect(topo).simulate(schedule.injections)
        assert ref.undelivered_count == 0
        assert_identical(ref, fast.simulate(schedule))

    def test_python_engine_matches_reference_past_63(self):
        topo, schedule = self._case(70, seed=41)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        fast._ck = None  # force the pure-Python engine
        ref = Interconnect(topo).simulate(schedule.injections)
        assert_identical(ref, fast.simulate(schedule))

    def test_row_oriented_injections_through_mw_kernel(self):
        """Legacy Injection lists also reach the multi-word kernel."""
        topo = mesh_for(70)
        schedule = synthetic_injections([0.2] * 70, topo, 40, fanout=3, seed=5)
        fast = FastInterconnect(topo, config=NocConfig(backend="fast"))
        ref = Interconnect(topo).simulate(schedule.injections)
        assert_identical(ref, fast.simulate(schedule.injections))

    def test_unicast_multiword_matches_reference(self):
        topo, schedule = self._case(70, seed=43)
        cfg = NocConfig(backend="fast", multicast=False)
        fast = FastInterconnect(topo, config=cfg)
        ref = Interconnect(
            topo, config=NocConfig(multicast=False)
        ).simulate(schedule.injections)
        assert_identical(ref, fast.simulate(schedule))


class TestScheduleSurface:
    def test_duration_cached_on_legacy_schedule(self):
        topo = build_topology("star", 4)
        schedule = synthetic_injections([0.5] * 4, topo, 20, seed=0)
        first = schedule.duration_cycles()
        assert first == schedule.duration_cycles()  # cached, stable
        assert first == max(i.cycle for i in schedule.injections) + 1

    def test_columnar_duration_is_last_cycle_plus_one(self):
        topo = build_topology("mesh", 9)
        graph = random_graph(30, 120, seed=47)
        assignment = np.random.default_rng(53).integers(0, 9, 30)
        schedule = build_injections(graph, assignment, topo)
        if schedule.n_packets:
            assert schedule.duration_cycles() == int(schedule.cycle[-1]) + 1

    def test_injections_view_is_cached(self):
        topo = build_topology("mesh", 9)
        graph = random_graph(30, 120, seed=59)
        assignment = np.random.default_rng(61).integers(0, 9, 30)
        schedule = build_injections(graph, assignment, topo)
        assert schedule.injections is schedule.injections
