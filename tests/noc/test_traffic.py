"""Tests for spike-graph -> injection-schedule conversion."""

import numpy as np
import pytest

from repro.noc.traffic import (
    build_injections,
    global_destinations,
    synthetic_injections,
)
from repro.noc.topology import star, tree
from repro.snn.graph import SpikeGraph


def _graph_with_spikes():
    """3 neurons: 0 -> 1, 0 -> 2, 1 -> 2; neuron 0 spikes at 1, 3 ms."""
    spike_times = [np.array([1.0, 3.0]), np.array([2.0]), np.empty(0)]
    return SpikeGraph.from_edges(
        3, [0, 0, 1], [1, 2, 2], [2.0, 2.0, 1.0], spike_times=spike_times
    )


class TestGlobalDestinations:
    def test_all_same_cluster_no_destinations(self):
        g = _graph_with_spikes()
        dests = global_destinations(g, np.array([0, 0, 0]))
        assert dests == {}

    def test_split_clusters(self):
        g = _graph_with_spikes()
        dests = global_destinations(g, np.array([0, 1, 1]))
        assert dests == {0: {1}}

    def test_multi_destination(self):
        g = _graph_with_spikes()
        dests = global_destinations(g, np.array([0, 1, 2]))
        assert dests == {0: {1, 2}, 1: {2}}

    def test_wrong_length_rejected(self):
        g = _graph_with_spikes()
        with pytest.raises(ValueError):
            global_destinations(g, np.array([0, 1]))


class TestBuildInjections:
    def test_one_packet_per_spike(self):
        g = _graph_with_spikes()
        topo = star(3)
        schedule = build_injections(g, np.array([0, 1, 2]), topo,
                                    cycles_per_ms=10.0)
        # Neuron 0: 2 spikes; neuron 1: 1 spike => 3 packets.
        assert schedule.n_packets == 3
        assert schedule.n_source_neurons == 2

    def test_cycle_conversion(self):
        g = _graph_with_spikes()
        topo = star(3)
        schedule = build_injections(g, np.array([0, 1, 1]), topo,
                                    cycles_per_ms=100.0)
        cycles = sorted(i.cycle for i in schedule.injections)
        assert cycles == [100, 300]  # spikes at 1 ms and 3 ms

    def test_destination_nodes_translated(self):
        g = _graph_with_spikes()
        topo = tree(3)
        assignment = np.array([0, 2, 2])
        schedule = build_injections(g, assignment, topo)
        inj = schedule.injections[0]
        assert inj.src_node == topo.node_of_crossbar(0)
        assert inj.dst_nodes == (topo.node_of_crossbar(2),)

    def test_local_only_graph_empty_schedule(self):
        g = _graph_with_spikes()
        topo = star(3)
        schedule = build_injections(g, np.array([0, 0, 0]), topo)
        assert schedule.n_packets == 0
        assert schedule.duration_cycles() == 0

    def test_sorted_by_cycle(self):
        g = _graph_with_spikes()
        topo = star(3)
        schedule = build_injections(g, np.array([0, 1, 2]), topo)
        cycles = [i.cycle for i in schedule.injections]
        assert cycles == sorted(cycles)

    def test_unique_uids(self):
        g = _graph_with_spikes()
        topo = star(3)
        schedule = build_injections(g, np.array([0, 1, 2]), topo)
        uids = [i.uid for i in schedule.injections]
        assert len(set(uids)) == len(uids)


class TestSyntheticInjections:
    def test_rate_scaling(self):
        topo = star(4)
        schedule = synthetic_injections([1.0, 0.0, 0.0, 0.0], topo,
                                        duration_cycles=100, seed=0)
        assert 95 <= schedule.n_packets <= 100  # rate 1.0 -> every cycle

    def test_fanout(self):
        topo = star(5)
        schedule = synthetic_injections([1.0] + [0.0] * 4, topo,
                                        duration_cycles=10, fanout=3, seed=0)
        for inj in schedule.injections:
            assert len(inj.dst_nodes) == 3

    def test_rate_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            synthetic_injections([0.5], star(4), duration_cycles=10)
