"""Threaded batch kernel (``nocsim_run_batch``) contract tests.

The contract: ``simulate_many`` through the batch kernel returns results
*bit-identical* to per-schedule ``simulate`` calls — same delivery
records, link loads and buffer high-water marks — for every thread
count, on single- and multi-word fabrics, healthy or degraded, and the
batch path degrades gracefully (``REPRO_NOC_THREADS=0``, no-OpenMP
builds, process-pool interaction) without changing a single bit.
"""

from __future__ import annotations

import os

import pytest

import repro.noc._ckernel as ckernel
from repro.noc._ckernel import (
    has_batch,
    kernel_disabled,
    load_kernel,
    openmp_enabled,
    resolve_threads,
)
from repro.noc.fastsim import FastInterconnect
from repro.noc.faults import inject_random_faults
from repro.noc.interconnect import NocConfig
from repro.noc.parallel import ParallelNocSimulator, summarize
from repro.noc.topology import mesh, tree
from repro.noc.traffic import synthetic_injections

KERNEL = None if kernel_disabled() else load_kernel()

pytestmark = pytest.mark.skipif(
    not has_batch(KERNEL),
    reason="compiled batch kernel unavailable (no C compiler or disabled)",
)

#: Low buffer capacity so the batch exercises backpressure, parking and
#: credit stalls — the paths where a racing implementation would diverge.
CONFIG = NocConfig(backend="fast", buffer_capacity=2)


def _schedules(topology, n_schedules, seed0=0, duration=50, fanout=2):
    rates = [0.3] * topology.n_attach_points
    return [
        synthetic_injections(
            rates, topology, duration, fanout=fanout, seed=seed0 + i
        ).injections
        for i in range(n_schedules)
    ]


def _fingerprint(stats):
    """Every observable bit of one simulation outcome."""
    return (
        stats.deliveries,
        stats.n_injected,
        stats.n_expected_deliveries,
        stats.cycles_run,
        dict(stats.link_loads),
        stats.peak_buffer_occupancy,
    )


def _serial_fingerprints(sim, schedules):
    return [_fingerprint(sim.simulate(s)) for s in schedules]


@pytest.fixture(scope="module")
def fabrics():
    """(name, topology) pairs spanning the kernel's dispatch variants."""
    degraded, _ = inject_random_faults(mesh(4), 2, seed=7)
    return [
        ("mesh3", mesh(3)),  # single mask word
        ("tree", tree(2, 3)),  # single mask word, tree routing
        ("mesh9", mesh(9)),  # 81 routers: multi-word masks
        ("degraded", degraded),  # faulted fabric, rerouted tables
    ]


class TestBitIdentity:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_serial_on_every_fabric(self, fabrics, threads):
        for name, topo in fabrics:
            n = 3 if name == "mesh9" else 6
            duration = 30 if name == "mesh9" else 50
            schedules = _schedules(topo, n, duration=duration)
            sim = FastInterconnect(topo, config=CONFIG)
            want = _serial_fingerprints(sim, schedules)
            got = [
                _fingerprint(s) for s in sim.simulate_many(schedules, threads=threads)
            ]
            assert got == want, f"{name} diverged at threads={threads}"

    def test_env_thread_cap_is_bit_identical(self, monkeypatch):
        topo = mesh(3)
        schedules = _schedules(topo, 5)
        sim = FastInterconnect(topo, config=CONFIG)
        want = _serial_fingerprints(sim, schedules)
        monkeypatch.setenv("REPRO_NOC_THREADS", "1")
        got = [_fingerprint(s) for s in sim.simulate_many(schedules)]
        assert got == want

    def test_threads_zero_disables_batch_path(self, monkeypatch):
        """``REPRO_NOC_THREADS=0`` falls back to per-schedule calls."""
        topo = mesh(3)
        schedules = _schedules(topo, 4)
        sim = FastInterconnect(topo, config=CONFIG)
        want = _serial_fingerprints(sim, schedules)
        monkeypatch.setenv("REPRO_NOC_THREADS", "0")
        assert sim.batch_threads() == 0
        got = [_fingerprint(s) for s in sim.simulate_many(schedules)]
        assert got == want


class TestResolveThreads:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NOC_THREADS", "7")
        assert resolve_threads(2) == 2
        assert resolve_threads() == 7

    def test_auto_and_negative_mean_per_core(self, monkeypatch):
        cores = os.cpu_count() or 1
        monkeypatch.delenv("REPRO_NOC_THREADS", raising=False)
        assert resolve_threads() == cores
        assert resolve_threads(-1) == cores
        monkeypatch.setenv("REPRO_NOC_THREADS", "auto")
        assert resolve_threads() == cores

    def test_zero_and_garbage(self, monkeypatch):
        assert resolve_threads(0) == 0
        monkeypatch.setenv("REPRO_NOC_THREADS", "bogus")
        assert resolve_threads() == (os.cpu_count() or 1)

    def test_batch_threads_caps_by_cores(self):
        sim = FastInterconnect(mesh(3), config=CONFIG)
        cores = os.cpu_count() or 1
        expected = max(1, min(4, cores)) if openmp_enabled(KERNEL) else 1
        assert sim.batch_threads(4) == expected
        assert sim.batch_threads(0) == 0


class TestPoolInteraction:
    def test_threaded_batch_preferred_over_pool(self, monkeypatch):
        """Explicit threads>1 answers from the batch kernel, no pool."""
        if not openmp_enabled(KERNEL):
            pytest.skip("kernel built without OpenMP")
        # batch_threads caps at the core count; pretend to have cores so
        # the preference logic is exercised even on 1-core CI runners
        # (extra OpenMP threads on one core are still bit-identical).
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        topo = mesh(3)
        schedules = _schedules(topo, 6)
        sim = FastInterconnect(topo, config=CONFIG)
        want = [summarize(sim.simulate(s), topo) for s in schedules]
        with ParallelNocSimulator(sim, workers=2, threads=2) as par:
            got = par.summarize_many(schedules)
            assert par._pool is None  # never paid for a process pool
        assert got == want

    def test_pool_workers_still_bit_identical(self):
        """workers>1 with the batch kernel available stays identical."""
        topo = mesh(3)
        schedules = _schedules(topo, 6)
        sim = FastInterconnect(topo, config=CONFIG)
        want = [summarize(sim.simulate(s), topo) for s in schedules]
        with ParallelNocSimulator(sim, workers=2, threads=0) as par:
            got = par.summarize_many(schedules)
        assert got == want


class TestBuildFallbacks:
    def _fresh_build(self, monkeypatch, tmp_path, no_openmp: bool):
        so = str(tmp_path / "_fastsim_kernel.so")
        monkeypatch.setattr(ckernel, "_SO", so)
        monkeypatch.setattr(ckernel, "_cached", None)
        monkeypatch.setattr(ckernel, "_load_attempted", False)
        if no_openmp:
            monkeypatch.setenv("REPRO_NOC_NO_OPENMP", "1")
        else:
            monkeypatch.delenv("REPRO_NOC_NO_OPENMP", raising=False)
        return ckernel.load_kernel()

    def test_no_openmp_build_serves_batches_serially(self, monkeypatch, tmp_path):
        lib = self._fresh_build(monkeypatch, tmp_path, no_openmp=True)
        assert lib is not None
        assert has_batch(lib)
        assert not openmp_enabled(lib)
        stamp = ckernel._read_stamp()
        assert stamp is not None and "-fopenmp" not in stamp
        # The serial build still answers batch calls bit-identically.
        topo = mesh(3)
        schedules = _schedules(topo, 4)
        sim = FastInterconnect(topo, config=CONFIG)
        want = _serial_fingerprints(sim, schedules)
        got = [_fingerprint(s) for s in sim.simulate_many(schedules, threads=4)]
        assert got == want

    def test_flag_change_triggers_rebuild(self, monkeypatch, tmp_path):
        lib = self._fresh_build(monkeypatch, tmp_path, no_openmp=True)
        assert lib is not None
        assert not ckernel._stale()  # fresh build matches desired flags
        # Re-enabling OpenMP changes the desired flag set; the mtime
        # check alone would say "fresh", the stamp must say "stale".
        monkeypatch.delenv("REPRO_NOC_NO_OPENMP", raising=False)
        if ckernel._openmp_supported():
            assert ckernel._stale()
            # Rebuild without re-dlopening: glibc caches loaded objects
            # by pathname, so a second CDLL on the same path would hand
            # back the stale library regardless of the file contents.
            ckernel._build()
            stamp = ckernel._read_stamp()
            assert stamp is not None and "-fopenmp" in stamp
            assert not ckernel._stale()
