"""Tests for channel buffers."""

import pytest

from repro.noc.buffer import ChannelBuffer
from repro.noc.packet import SpikePacket


def _pkt(uid: int) -> SpikePacket:
    return SpikePacket(uid=uid, src_neuron=0, src_node=0,
                       dst_nodes=frozenset([1]), injected_cycle=0)


class TestChannelBuffer:
    def test_fifo_order(self):
        buf = ChannelBuffer(capacity=4)
        for i in range(3):
            buf.push(_pkt(i))
        assert [buf.pop().uid for _ in range(3)] == [0, 1, 2]

    def test_capacity_enforced(self):
        buf = ChannelBuffer(capacity=2)
        buf.push(_pkt(0))
        buf.push(_pkt(1))
        assert not buf.has_space()
        with pytest.raises(OverflowError):
            buf.push(_pkt(2))

    def test_has_space_with_staged_extra(self):
        buf = ChannelBuffer(capacity=3)
        buf.push(_pkt(0))
        assert buf.has_space(extra=1)
        assert not buf.has_space(extra=2)

    def test_unbounded(self):
        buf = ChannelBuffer(capacity=None)
        for i in range(1000):
            buf.push(_pkt(i))
        assert len(buf) == 1000

    def test_peak_tracks_high_water(self):
        buf = ChannelBuffer(capacity=5)
        for i in range(4):
            buf.push(_pkt(i))
        for _ in range(4):
            buf.pop()
        assert buf.peak == 4

    def test_replace_head_keeps_order(self):
        buf = ChannelBuffer(capacity=8)
        buf.push(_pkt(0))
        buf.push(_pkt(9))
        buf.replace_head([_pkt(100), _pkt(101)])
        assert [buf.pop().uid for _ in range(3)] == [100, 101, 9]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ChannelBuffer(capacity=0)

    def test_bool_and_head(self):
        buf = ChannelBuffer()
        assert not buf
        buf.push(_pkt(7))
        assert buf and buf.head().uid == 7
