"""Property-based tests on partition invariants (paper Eqs. 4-5)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    is_feasible,
    random_assignment,
    repair_assignment,
)

# Problem dimensions where neurons always fit: capacity * clusters >= n.
problem_dims = st.tuples(
    st.integers(min_value=1, max_value=60),   # neurons
    st.integers(min_value=1, max_value=8),    # clusters
).flatmap(
    lambda t: st.tuples(
        st.just(t[0]),
        st.just(t[1]),
        st.integers(min_value=-(-t[0] // t[1]), max_value=t[0] + 4),  # capacity
    )
)


@given(problem_dims, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_repair_always_feasible(dims, seed):
    """Repair must produce a feasible assignment from any raw assignment."""
    n, c, cap = dims
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, c, size=n)
    repaired = repair_assignment(raw, c, cap, rng=seed)
    assert is_feasible(repaired, c, cap)


@given(problem_dims, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_repair_is_identity_on_feasible(dims, seed):
    """A feasible assignment passes through repair unchanged."""
    n, c, cap = dims
    feasible = random_assignment(n, c, cap, rng=seed)
    repaired = repair_assignment(feasible, c, cap, rng=seed + 1)
    assert np.array_equal(repaired, feasible)


@given(problem_dims, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_repair_only_moves_from_overfull(dims, seed):
    """Neurons in non-overfull clusters keep their placement."""
    n, c, cap = dims
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, c, size=n)
    sizes = np.bincount(raw, minlength=c)
    repaired = repair_assignment(raw, c, cap, rng=seed)
    moved = raw != repaired
    for neuron in np.nonzero(moved)[0]:
        assert sizes[raw[neuron]] > cap


@given(problem_dims, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_random_assignment_feasible(dims, seed):
    n, c, cap = dims
    a = random_assignment(n, c, cap, rng=seed)
    assert is_feasible(a, c, cap)
    assert a.shape == (n,)
