"""Property-based tests on interconnect invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.packet import Injection
from repro.noc.routing import routing_for
from repro.noc.topology import build_topology


@st.composite
def traffic_scenarios(draw):
    kind = draw(st.sampled_from(["tree", "mesh", "star"]))
    n_crossbars = draw(st.integers(min_value=2, max_value=8))
    topo = build_topology(kind, n_crossbars)
    n_packets = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    nodes = [topo.node_of_crossbar(k) for k in range(n_crossbars)]
    injections = []
    for uid in range(n_packets):
        src_k = int(rng.integers(0, n_crossbars))
        n_dst = int(rng.integers(1, n_crossbars))
        dst_ks = rng.choice(
            [k for k in range(n_crossbars) if k != src_k],
            size=min(n_dst, n_crossbars - 1), replace=False,
        )
        injections.append(Injection(
            cycle=int(rng.integers(0, 50)),
            src_node=nodes[src_k],
            dst_nodes=tuple(sorted(nodes[int(k)] for k in dst_ks)),
            src_neuron=src_k,
            uid=uid,
        ))
    multicast = draw(st.booleans())
    buffer_capacity = draw(st.integers(min_value=1, max_value=8))
    return topo, injections, NocConfig(
        multicast=multicast, buffer_capacity=buffer_capacity
    )


@given(traffic_scenarios())
@settings(max_examples=40, deadline=None)
def test_every_expected_delivery_happens_exactly_once(scenario):
    """Spike conservation: each (packet, destination) delivered once."""
    topo, injections, config = scenario
    stats = Interconnect(topo, config=config).simulate(injections)
    assert stats.undelivered_count == 0
    seen = set()
    for rec in stats.deliveries:
        key = (rec.uid, rec.dst_node)
        assert key not in seen, f"duplicate delivery {key}"
        seen.add(key)
    expected = {
        (inj.uid, d) for inj in injections for d in inj.dst_nodes
        if d != inj.src_node
    }
    assert seen == expected


@given(traffic_scenarios())
@settings(max_examples=40, deadline=None)
def test_latency_at_least_routed_distance(scenario):
    """No teleportation: latency >= hop distance, hops == routed distance."""
    topo, injections, config = scenario
    routing = routing_for(topo)
    stats = Interconnect(topo, routing, config).simulate(injections)
    for rec in stats.deliveries:
        d = routing.distance(rec.src_node, rec.dst_node)
        assert rec.hops >= d
        assert rec.delivered_cycle - rec.injected_cycle >= d


@given(traffic_scenarios())
@settings(max_examples=40, deadline=None)
def test_delivery_after_injection(scenario):
    topo, injections, config = scenario
    stats = Interconnect(topo, config=config).simulate(injections)
    for rec in stats.deliveries:
        assert rec.delivered_cycle > rec.injected_cycle


@given(traffic_scenarios())
@settings(max_examples=30, deadline=None)
def test_multicast_never_uses_more_hops_than_unicast(scenario):
    """In-network forking shares trunk links, so hop totals can't grow."""
    topo, injections, config = scenario
    m_stats = Interconnect(
        topo, config=NocConfig(multicast=True,
                               buffer_capacity=config.buffer_capacity)
    ).simulate(injections)
    u_stats = Interconnect(
        topo, config=NocConfig(multicast=False,
                               buffer_capacity=config.buffer_capacity)
    ).simulate(injections)
    assert m_stats.total_hops() <= u_stats.total_hops()


@given(traffic_scenarios())
@settings(max_examples=30, deadline=None)
def test_bounded_buffers_never_exceed_capacity(scenario):
    topo, injections, config = scenario
    ic = Interconnect(topo, config=config)
    stats = ic.simulate(injections)
    assert stats.peak_buffer_occupancy <= config.buffer_capacity
