"""Property-based tests on fault-injection invariants.

The load-bearing claims: ``survivable_links`` never offers a link whose
removal disconnects the fabric (on multichip boards that means no
bridge chain is ever cut), and ``inject_random_faults`` either delivers
exactly the requested count or raises with the achieved count — never a
silently-short fault set.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.faults import (
    bridge_chains,
    degrade_topology,
    inject_random_faults,
    survivable_links,
)
from repro.noc.multichip import multichip


@st.composite
def boards(draw):
    """Multichip boards whose bridge chains are genuine cut sets."""
    n_chips = draw(st.sampled_from([2, 4]))
    crossbars_per_chip = draw(st.sampled_from([4, 9]))
    chip_kind = draw(st.sampled_from(["mesh", "torus"]))
    bridge_latency = draw(st.integers(min_value=1, max_value=4))
    return multichip(
        n_chips * crossbars_per_chip,
        n_chips=n_chips,
        chip_kind=chip_kind,
        bridge_latency=bridge_latency,
    )


@given(boards(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_offered_links_are_individually_survivable(board, seed):
    """Killing any offered link — whole-bridge semantics included —
    leaves the fabric connected with every crossbar still attached."""
    import numpy as np

    offered = survivable_links(board)
    assert offered
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(offered), size=min(4, len(offered)),
                       replace=False)
    for i in picks:
        degraded = degrade_topology(board, [offered[int(i)]])
        assert nx.is_connected(degraded.graph)
        assert degraded.n_attach_points == board.n_attach_points


@given(st.sampled_from([4, 9]), st.sampled_from(["mesh", "torus"]),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_lone_bridge_chain_never_offered(per_chip, chip_kind, latency):
    """A 2-chip board's only bridge is a cut set: no segment of its
    relay chain may ever be offered as a survivable fault."""
    board = multichip(
        2 * per_chip, n_chips=2, chip_kind=chip_kind,
        bridge_latency=latency,
    )
    offered = set(survivable_links(board))
    chain_links = {
        tuple(sorted((a, b)))
        for chain in bridge_chains(board)
        for a, b in zip(chain, chain[1:])
    }
    assert offered  # intra-chip redundancy still exists
    assert not offered & chain_links


@given(boards(), st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_chain_kill_never_disconnects(board, n_faults, seed):
    """Any achievable random fault set leaves the fabric connected."""
    try:
        degraded, chosen = inject_random_faults(board, n_faults, seed=seed)
    except ValueError as exc:
        # Exhaustion must report the achieved count, not fail silently.
        assert "cannot survive" in str(exc)
        assert str(n_faults) in str(exc)
        return
    assert len(chosen) == n_faults
    assert nx.is_connected(degraded.graph)
    # Every chip still reaches every other: all crossbars remain
    # attached to the surviving component.
    assert degraded.n_attach_points == board.n_attach_points


@given(boards(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_exhaustion_reports_achieved_count(board, seed):
    """Requesting more faults than survivable raises with the budget."""
    budget = len(survivable_links(board))
    with pytest.raises(ValueError, match="cannot survive"):
        inject_random_faults(board, budget + 50, seed=seed)
