"""Property-based tests for the AER packet-counting objective."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.traffic_matrix import TrafficMatrix
from repro.snn.graph import SpikeGraph


@st.composite
def consistent_graphs(draw):
    """Graphs whose per-edge traffic equals the source's spike count,
    as SpikeGraph.from_simulation guarantees."""
    n = draw(st.integers(min_value=2, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    spikes = rng.integers(0, 30, size=n).astype(float)
    n_edges = draw(st.integers(min_value=0, max_value=40))
    src = rng.integers(0, n, size=n_edges)
    dst = rng.integers(0, n, size=n_edges)
    traffic = spikes[src]
    return SpikeGraph.from_edges(n, src, dst, traffic, name="pkt")


@st.composite
def graph_and_assignment(draw):
    graph = draw(consistent_graphs())
    c = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return graph, rng.integers(0, c, size=graph.n_neurons), c


def _brute_force_packets(graph, assignment):
    """Packets = sum over neurons of spikes x remote destination clusters."""
    matrix = TrafficMatrix(graph)
    total = 0.0
    for neuron in range(graph.n_neurons):
        remote = set()
        for s, d in zip(matrix.src, matrix.dst):
            if int(s) == neuron and assignment[d] != assignment[neuron]:
                remote.add(int(assignment[d]))
        total += matrix.neuron_spikes[neuron] * len(remote)
    return total


@given(graph_and_assignment())
@settings(max_examples=50, deadline=None)
def test_packet_traffic_matches_bruteforce(data):
    graph, assignment, _ = data
    matrix = TrafficMatrix(graph)
    assert matrix.packet_traffic(assignment) == _brute_force_packets(
        graph, assignment
    )


@given(graph_and_assignment())
@settings(max_examples=40, deadline=None)
def test_packet_batch_matches_scalar(data):
    graph, assignment, _ = data
    matrix = TrafficMatrix(graph)
    batch = np.stack([assignment, assignment[::-1].copy(),
                      np.zeros_like(assignment)])
    values = matrix.packet_traffic_batch(batch)
    for row, value in zip(batch, values):
        assert value == matrix.packet_traffic(row)


@given(graph_and_assignment())
@settings(max_examples=40, deadline=None)
def test_packets_never_exceed_synapse_spikes(data):
    """Multicast can only merge flows: packets <= per-synapse crossing."""
    graph, assignment, _ = data
    matrix = TrafficMatrix(graph)
    assert (matrix.packet_traffic(assignment)
            <= matrix.global_traffic(assignment) + 1e-9)


@given(graph_and_assignment())
@settings(max_examples=40, deadline=None)
def test_single_cluster_zero_packets(data):
    graph, _, _ = data
    matrix = TrafficMatrix(graph)
    assert matrix.packet_traffic(np.zeros(graph.n_neurons, dtype=int)) == 0.0


@given(graph_and_assignment())
@settings(max_examples=40, deadline=None)
def test_schedule_agrees_with_packet_count(data):
    """The NoC injection schedule contains exactly packet_traffic spikes.

    Ties the optimizer's objective to what the simulator actually sends:
    one injection per spike of each neuron with remote destinations, and
    total (injection, destination) pairs == packet_traffic.
    """
    from repro.noc.topology import star
    from repro.noc.traffic import build_injections

    graph, assignment, c = data
    # Give each neuron exactly spike-count many spike times.
    matrix = TrafficMatrix(graph)
    graph.spike_times = [
        np.arange(int(matrix.neuron_spikes[i]), dtype=float)
        for i in range(graph.n_neurons)
    ]
    topo = star(max(int(assignment.max()) + 1, 2))
    schedule = build_injections(graph, assignment, topo, cycles_per_ms=1.0)
    pairs = sum(len(inj.dst_nodes) for inj in schedule.injections)
    assert pairs == matrix.packet_traffic(assignment)
