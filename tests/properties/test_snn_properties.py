"""Property-based tests on SNN simulator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn.generators import PoissonSource, ScheduledSource
from repro.snn.graph import SpikeGraph
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation


@given(
    st.integers(min_value=1, max_value=20),   # sources
    st.floats(min_value=0.0, max_value=100.0),  # rate
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_source_spikes_bounded_by_ticks(n, rate, seed):
    """A neuron can spike at most once per tick."""
    net = Network()
    net.add_source("in", PoissonSource(n, rate))
    result = Simulation(net, seed=seed).run(100.0)
    for train in result.spike_times:
        assert train.size <= 100
        assert (np.diff(train) >= 1.0 - 1e-9).all() if train.size > 1 else True


@given(
    st.lists(
        st.lists(st.floats(min_value=0.0, max_value=99.0), max_size=10),
        min_size=1, max_size=5,
    )
)
@settings(max_examples=40, deadline=None)
def test_scheduled_source_replays_within_tick_resolution(trains):
    """Scheduled spikes replay at their tick (floor to dt), one per tick."""
    net = Network()
    net.add_source("in", ScheduledSource(trains))
    result = Simulation(net, seed=0).run(100.0)
    for i, original in enumerate(trains):
        expected_ticks = sorted({int(t) for t in original})
        assert [int(t) for t in result.spike_times[i]] == expected_ticks


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_spike_graph_traffic_consistency(n_src, n_out, seed):
    """Graph traffic per synapse == pre-neuron spike count, always."""
    rng = np.random.default_rng(seed)
    net = Network()
    net.add_source("in", PoissonSource(n_src, 50.0))
    net.add_population("out", n_out, LIFModel(), layer=1)
    net.connect("in", "out",
                weights=rng.uniform(0, 80, size=(n_src, n_out)))
    result = Simulation(net, seed=seed).run(200.0)
    graph = SpikeGraph.from_simulation(net, result)
    counts = result.spike_counts()
    for s, t in zip(graph.src, graph.traffic):
        assert t == counts[s]


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_refractory_never_violated(seed):
    """With t_ref = 5 ms, consecutive spikes are >= 5 ms apart."""
    net = Network()
    net.add_population(
        "driven", 3, LIFModel(t_ref=5.0), bias_current=100.0
    )
    result = Simulation(net, seed=seed).run(300.0)
    for train in result.spike_times:
        if train.size > 1:
            assert (np.diff(train) >= 5.0).all()
