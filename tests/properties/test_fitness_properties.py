"""Property-based tests on traffic/fitness consistency (paper Eqs. 6-8)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitness import InterconnectFitness
from repro.core.traffic_matrix import TrafficMatrix, cluster_traffic
from repro.snn.graph import SpikeGraph


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    n_edges = draw(st.integers(min_value=0, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=n_edges)
    dst = rng.integers(0, n, size=n_edges)
    traffic = rng.integers(0, 50, size=n_edges).astype(float)
    return SpikeGraph.from_edges(n, src, dst, traffic, name="prop")


@st.composite
def graph_and_assignment(draw):
    graph = draw(random_graphs())
    c = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, c, size=graph.n_neurons)
    return graph, assignment, c


@given(graph_and_assignment())
@settings(max_examples=60, deadline=None)
def test_fitness_equals_bruteforce(data):
    """Eq. 8 == brute-force per-synapse crossing sum."""
    graph, assignment, _ = data
    fit = InterconnectFitness(graph)
    brute = sum(
        t
        for s, d, t in zip(graph.src, graph.dst, graph.traffic)
        if assignment[s] != assignment[d]
    )
    assert fit.evaluate(assignment) == brute


@given(graph_and_assignment())
@settings(max_examples=60, deadline=None)
def test_cluster_matrix_sums_to_fitness(data):
    """Eq. 7 off-diagonal sum == Eq. 8."""
    graph, assignment, c = data
    matrix = cluster_traffic(graph, assignment, c)
    fit = InterconnectFitness(graph)
    assert matrix.sum() == fit.evaluate(assignment)
    assert np.trace(matrix) == 0.0  # zero diagonal by definition


@given(graph_and_assignment())
@settings(max_examples=60, deadline=None)
def test_local_global_conservation(data):
    """Local + global traffic == total traffic, for any assignment."""
    graph, assignment, _ = data
    m = TrafficMatrix(graph)
    assert (
        m.local_traffic(assignment) + m.global_traffic(assignment)
        == m.total
    )


@given(graph_and_assignment())
@settings(max_examples=40, deadline=None)
def test_batch_matches_scalar(data):
    graph, assignment, c = data
    fit = InterconnectFitness(graph)
    batch = np.stack([assignment, assignment[::-1].copy()])
    values = fit.evaluate_batch(batch)
    assert values[0] == fit.evaluate(batch[0])
    assert values[1] == fit.evaluate(batch[1])


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_single_cluster_zero_fitness(graph):
    """Everything on one crossbar -> no interconnect traffic."""
    fit = InterconnectFitness(graph)
    assert fit.evaluate(np.zeros(graph.n_neurons, dtype=int)) == 0.0


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_fitness_bounded_by_total(graph):
    """No assignment can exceed all-synapses-global traffic."""
    fit = InterconnectFitness(graph)
    rng = np.random.default_rng(0)
    a = rng.integers(0, graph.n_neurons, size=graph.n_neurons)
    assert fit.evaluate(a) <= fit.upper_bound
