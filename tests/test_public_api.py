"""Public-API surface tests: every documented export imports and exists."""

import importlib

import pytest


PUBLIC_SURFACE = {
    "repro": ["map_snn", "compare_methods", "run_pipeline", "__version__"],
    "repro.snn": [
        "Network", "Population", "Projection", "LIFModel",
        "AdaptiveLIFModel", "IzhikevichModel", "PoissonSource",
        "RegularSource", "ScheduledSource", "Simulation", "STDPRule",
        "SpikeGraph", "rate_encode", "latency_encode", "isi_cv",
        "population_rate", "synchrony_index",
    ],
    "repro.noc": [
        "Topology", "mesh", "tree", "star", "torus", "Interconnect",
        "NocConfig", "NocStats", "RoutingTable", "WestFirstRouting",
        "xy_routing", "west_first_routing", "shortest_path_routing",
        "build_injections", "degrade_topology", "inject_random_faults",
    ],
    "repro.hardware": [
        "Architecture", "Crossbar", "EnergyModel", "cxquad",
        "truenorth_like", "custom", "encode_spike_trains", "decode_events",
        "load_architecture", "save_architecture", "quantize_weights",
        "quantize_graph",
    ],
    "repro.core": [
        "Partition", "TrafficMatrix", "InterconnectFitness", "BinaryPSO",
        "PSOConfig", "map_snn", "compare_methods", "pacman_partition",
        "neutrams_partition", "random_partition", "greedy_partition",
        "annealing_partition", "place_clusters", "apply_placement",
    ],
    "repro.metrics": [
        "disorder_fraction", "isi_distortion_mean", "MetricReport",
        "build_report", "congestion_report", "bottleneck_links",
    ],
    "repro.obs": [
        "Observer", "Tracer", "Span", "MetricsRegistry", "get_observer",
        "observe", "set_observer", "write_trace_jsonl", "read_trace_jsonl",
        "load_trace_tree", "prometheus_text", "write_metrics_text",
        "span_tree_summary",
    ],
    "repro.framework": [
        "run_pipeline", "explore_architecture", "explore_swarm_size",
        "reproduce", "delivered_spike_trains", "perceived_spike_trains",
    ],
    "repro.apps": [
        "build_application", "build_hello_world", "build_image_smoothing",
        "build_digit_recognition", "build_heartbeat", "build_synthetic",
        "build_convnet", "APPLICATIONS",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_SURFACE[module_name]:
        assert hasattr(module, name), f"{module_name} lacks {name}"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_all_lists_are_importable(module_name):
    """Everything in __all__ actually exists (no stale exports)."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
