"""Tests for programmatic paper-artifact reproduction.

These run at minimal effort so CI stays fast; the benchmark harness does
the full-budget runs.
"""

import pytest

from repro.framework.reproduce import ARTIFACTS, reproduce


class TestReproduceDispatch:
    def test_unknown_artifact(self):
        with pytest.raises(KeyError, match="unknown artifact"):
            reproduce("fig99")

    def test_nonpositive_effort(self):
        with pytest.raises(ValueError, match="effort"):
            reproduce("fig5", effort=0.0)

    def test_all_artifacts_registered(self):
        assert set(ARTIFACTS) == {"fig5", "table2", "fig6", "fig7"}


@pytest.mark.slow
class TestReproduceRuns:
    """Smoke runs at tiny effort; marked slow (several seconds each)."""

    def test_fig5_rows(self, capsys):
        rows = reproduce("fig5", effort=0.1)
        assert len(rows) == 8  # 4 synthetic + 4 realistic
        assert "Fig. 5" in capsys.readouterr().out

    def test_fig6_rows(self, capsys):
        rows = reproduce("fig6", effort=0.1)
        assert [r[0] for r in rows] == [90, 180, 360, 720, 1080, 1440]
        assert "Fig. 6" in capsys.readouterr().out
