"""Tests for the end-to-end pipeline (paper Fig. 4)."""

import pytest

from repro.core.pso import PSOConfig
from repro.framework.pipeline import run_pipeline
from repro.noc.interconnect import NocConfig


class TestRunPipeline:
    def test_all_packets_delivered(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(tiny_graph, two_cluster_arch, method="random",
                              seed=0)
        assert result.noc_stats.undelivered_count == 0

    def test_schedule_matches_mapping(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(tiny_graph, two_cluster_arch, method="pacman")
        # Optimal-like pacman split: only neuron 3 (bridge source) sends.
        assert result.schedule.n_source_neurons == 1
        assert result.schedule.n_packets == 10  # its 10 spikes

    def test_skip_noc_simulation(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(tiny_graph, two_cluster_arch, method="pacman",
                              simulate_noc=False)
        assert result.noc_stats.delivered_count == 0
        assert result.report.global_spikes > 0  # mapping metrics intact

    def test_noc_config_respected(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(
            tiny_graph, two_cluster_arch, method="random", seed=0,
            noc_config=NocConfig(multicast=False),
        )
        assert result.noc_stats.undelivered_count == 0

    def test_fast_backend_end_to_end_matches_reference(
        self, tiny_graph, two_cluster_arch
    ):
        """The whole pipeline agrees between backends, report included."""
        ref = run_pipeline(tiny_graph, two_cluster_arch, method="pacman",
                           noc_config=NocConfig(backend="reference"))
        fast = run_pipeline(tiny_graph, two_cluster_arch, method="pacman",
                            noc_config=NocConfig(backend="fast"))
        assert ref.noc_stats.delivered_count == fast.noc_stats.delivered_count
        assert ref.noc_stats.cycles_run == fast.noc_stats.cycles_run
        assert ref.noc_stats.link_loads == fast.noc_stats.link_loads
        ref_records = [
            (r.uid, r.dst_node, r.delivered_cycle, r.hops)
            for r in ref.noc_stats.deliveries
        ]
        fast_records = [
            (r.uid, r.dst_node, r.delivered_cycle, r.hops)
            for r in fast.noc_stats.deliveries
        ]
        assert ref_records == fast_records
        assert ref.report.max_latency_cycles == fast.report.max_latency_cycles
        assert ref.report.global_energy_pj == pytest.approx(
            fast.report.global_energy_pj
        )

    def test_pso_method(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(
            tiny_graph, two_cluster_arch, method="pso", seed=0,
            pso_config=PSOConfig(n_particles=10, n_iterations=10),
        )
        assert result.mapping.fitness == 5.0

    def test_describe_renders(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(tiny_graph, two_cluster_arch, method="pacman")
        text = result.describe()
        assert "two_communities" in text

    def test_better_mapping_less_interconnect_traffic(
        self, tiny_graph, two_cluster_arch
    ):
        worst = run_pipeline(tiny_graph, two_cluster_arch, method="random",
                             seed=3)
        best = run_pipeline(
            tiny_graph, two_cluster_arch, method="pso", seed=0,
            pso_config=PSOConfig(n_particles=20, n_iterations=20),
        )
        assert (best.noc_stats.n_injected <= worst.noc_stats.n_injected)
        assert (best.report.global_energy_pj <= worst.report.global_energy_pj)
