"""Tests for experiment records."""

from repro.framework.experiment import (
    ExperimentRecord,
    load_records,
    save_records,
)


class TestExperimentRecord:
    def test_json_round_trip(self):
        rec = ExperimentRecord(
            experiment="fig5", workload="synth_1x200", method="pso",
            metrics={"energy_pj": 12.5}, parameters={"seed": 3},
        )
        clone = ExperimentRecord.from_json(rec.to_json())
        assert clone == rec

    def test_defaults_empty(self):
        rec = ExperimentRecord(experiment="t", workload="w", method="m")
        assert rec.metrics == {} and rec.parameters == {}


class TestPersistence:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "results" / "records.jsonl"
        records = [
            ExperimentRecord(experiment="fig5", workload="a", method="pso",
                             metrics={"x": 1.0}),
            ExperimentRecord(experiment="fig5", workload="b", method="pacman",
                             metrics={"x": 2.0}),
        ]
        save_records(records, path)
        loaded = load_records(path)
        assert loaded == records

    def test_append_semantics(self, tmp_path):
        path = tmp_path / "r.jsonl"
        save_records([ExperimentRecord("e", "w", "m")], path)
        save_records([ExperimentRecord("e2", "w2", "m2")], path)
        assert len(load_records(path)) == 2

    def test_missing_file_empty(self, tmp_path):
        assert load_records(tmp_path / "nope.jsonl") == []
