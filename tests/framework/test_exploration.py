"""Tests for architecture / swarm exploration sweeps."""

import numpy as np
import pytest

from repro.framework.exploration import (
    estimate_interconnect_energy_pj,
    explore_architecture,
    explore_swarm_size,
    normalized_energies,
)
from repro.hardware.presets import custom


class TestExploreArchitecture:
    def test_sweep_shapes(self, tiny_graph):
        base = custom(n_crossbars=2, neurons_per_crossbar=4, name="base")
        points = explore_architecture(
            tiny_graph, base, crossbar_sizes=[2, 4, 8], method="pacman",
            seed=0,
        )
        assert [p.neurons_per_crossbar for p in points] == [2, 4, 8]
        assert points[0].n_crossbars == 4
        assert points[-1].n_crossbars == 1

    def test_single_crossbar_all_local(self, tiny_graph):
        base = custom(n_crossbars=1, neurons_per_crossbar=8)
        (point,) = explore_architecture(
            tiny_graph, base, crossbar_sizes=[8], method="pacman"
        )
        assert point.global_energy_uj == 0.0
        assert point.global_spikes == 0.0
        assert point.local_energy_uj > 0.0

    def test_global_energy_decreases_with_size(self, tiny_graph):
        base = custom(n_crossbars=4, neurons_per_crossbar=2)
        points = explore_architecture(
            tiny_graph, base, crossbar_sizes=[2, 8], method="pacman"
        )
        assert points[0].global_energy_uj > points[-1].global_energy_uj

    def test_totals_consistent(self, tiny_graph):
        base = custom(n_crossbars=2, neurons_per_crossbar=4)
        points = explore_architecture(
            tiny_graph, base, crossbar_sizes=[4], method="pacman"
        )
        p = points[0]
        assert p.total_energy_uj == pytest.approx(
            p.local_energy_uj + p.global_energy_uj
        )


class TestEstimateEnergy:
    def test_all_local_zero(self, tiny_graph, two_cluster_arch):
        a = np.zeros(8, dtype=int)
        assert estimate_interconnect_energy_pj(
            tiny_graph, a, two_cluster_arch
        ) == 0.0

    def test_matches_noc_energy_when_uncongested(self, two_cluster_arch):
        """Analytic estimate equals simulated energy for delivered traffic.

        Requires a graph whose per-synapse traffic equals its source
        spike counts (as from_simulation guarantees); multicast is
        irrelevant here (one destination crossbar), so hops are exactly
        spikes x distance.
        """
        from repro.framework.pipeline import run_pipeline
        from repro.snn.graph import SpikeGraph
        spike_times = [np.linspace(0, 90, 10) for _ in range(8)]
        graph = SpikeGraph.from_edges(
            8,
            src=[0, 1, 2, 3, 4, 5, 6, 7],
            dst=[1, 2, 3, 4, 5, 6, 7, 0],
            traffic=[10.0] * 8,  # == spike counts, as in real graphs
            spike_times=spike_times,
            name="ring",
        )
        result = run_pipeline(graph, two_cluster_arch, method="pacman")
        estimate = estimate_interconnect_energy_pj(
            graph, result.mapping.assignment, two_cluster_arch
        )
        assert estimate == pytest.approx(result.report.global_energy_pj)

    def test_scales_with_distance(self, tiny_graph):
        near = custom(n_crossbars=2, neurons_per_crossbar=4,
                      interconnect="star")
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        e_star = estimate_interconnect_energy_pj(tiny_graph, a, near)
        far = custom(n_crossbars=2, neurons_per_crossbar=4,
                     interconnect="tree")
        e_tree = estimate_interconnect_energy_pj(tiny_graph, a, far)
        assert e_star == e_tree  # both are 2 hops for 2 crossbars


class TestExploreSwarmSize:
    def test_points_and_normalization(self, tiny_graph, two_cluster_arch):
        points = explore_swarm_size(
            tiny_graph, two_cluster_arch, swarm_sizes=[2, 20],
            n_iterations=10, seed=0,
        )
        assert [p.swarm_size for p in points] == [2, 20]
        norm = normalized_energies(points)
        assert min(norm) == 1.0
        assert all(v >= 1.0 for v in norm)

    def test_larger_swarm_no_worse(self, tiny_graph, two_cluster_arch):
        points = explore_swarm_size(
            tiny_graph, two_cluster_arch, swarm_sizes=[1, 40],
            n_iterations=15, seed=1,
        )
        assert points[1].global_spikes <= points[0].global_spikes


class TestExploreChips:
    def test_chip_sweep_shapes(self, tiny_graph):
        from repro.framework.exploration import explore_chips

        base = custom(n_crossbars=4, neurons_per_crossbar=2,
                      interconnect="mesh", name="board")
        points = explore_chips(
            tiny_graph, base, chip_counts=[1, 2, 4], method="pacman", seed=0,
        )
        assert [p.n_chips for p in points] == [1, 2, 4]
        assert points[0].n_bridges == 0
        assert points[0].inter_chip_hops == 0
        assert points[1].n_bridges == 1
        assert points[2].n_bridges == 4

    def test_more_chips_cost_more_global_energy(self, tiny_graph):
        """Same mapping problem; splitting it over bridges must not be free."""
        from dataclasses import replace

        from repro.framework.exploration import explore_chips
        from repro.hardware.energy_model import EnergyModel

        base = replace(
            custom(n_crossbars=4, neurons_per_crossbar=2,
                   interconnect="mesh", bridge_latency=4),
            energy=EnergyModel(e_bridge_pj=100.0),
        )
        one, four = explore_chips(
            tiny_graph, base, chip_counts=[1, 4], method="pacman", seed=0,
        )
        if four.global_spikes > 0:
            assert four.global_energy_uj >= one.global_energy_uj
            assert four.bridge_crossings > 0


class TestMultiChipEstimates:
    def test_estimate_charges_bridge_crossings(self, tiny_graph):
        """Analytic estimate prices bridges like the simulator does."""
        import numpy as np

        from dataclasses import replace
        from repro.hardware.energy_model import EnergyModel

        flat = custom(n_crossbars=2, neurons_per_crossbar=4,
                      interconnect="mesh", name="flat")
        board = replace(flat, n_chips=2, name="board",
                        energy=EnergyModel(e_bridge_pj=500.0))
        a = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        flat_pj = estimate_interconnect_energy_pj(tiny_graph, a, flat)
        board_pj = estimate_interconnect_energy_pj(tiny_graph, a, board)
        # 2 chips of 1 crossbar each: every remote flow crosses exactly
        # one bridge, so the difference is the crossing spikes * 500 pJ
        # (bridge_latency=1 keeps routed distances identical to flat).
        from repro.core.traffic_matrix import TrafficMatrix
        from repro.noc.traffic import global_destinations

        spikes = TrafficMatrix(tiny_graph).neuron_spikes
        crossing = sum(
            float(spikes[n]) * len(cs)
            for n, cs in global_destinations(tiny_graph, a).items()
        )
        assert board_pj == pytest.approx(flat_pj + crossing * 500.0)

    def test_synapse_estimate_charges_bridges(self, tiny_graph):
        import numpy as np

        from dataclasses import replace
        from repro.framework.exploration import estimate_synapse_energy_pj
        from repro.hardware.energy_model import EnergyModel

        flat = custom(n_crossbars=2, neurons_per_crossbar=4,
                      interconnect="mesh", name="flat")
        board = replace(flat, n_chips=2, name="board",
                        energy=EnergyModel(e_bridge_pj=500.0))
        a = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        assert estimate_synapse_energy_pj(tiny_graph, a, board) > (
            estimate_synapse_energy_pj(tiny_graph, a, flat)
        )

    def test_explore_architecture_carries_chips_through_scaling(self, tiny_graph):
        """The Fig. 6 sweep keeps the base's multi-chip split per point."""
        base = custom(n_crossbars=4, neurons_per_crossbar=2,
                      interconnect="mesh", n_chips=2, bridge_latency=4)
        flat = custom(n_crossbars=4, neurons_per_crossbar=2,
                      interconnect="mesh")
        split = explore_architecture(
            tiny_graph, base, crossbar_sizes=[2], method="pacman", seed=0
        )[0]
        single = explore_architecture(
            tiny_graph, flat, crossbar_sizes=[2], method="pacman", seed=0
        )[0]
        # Same mapping problem, but the split platform pays bridge
        # latency on cross-chip traffic.
        assert split.max_latency_cycles > single.max_latency_cycles
