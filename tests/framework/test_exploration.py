"""Tests for architecture / swarm exploration sweeps."""

import numpy as np
import pytest

from repro.framework.exploration import (
    estimate_interconnect_energy_pj,
    explore_architecture,
    explore_swarm_size,
    normalized_energies,
)
from repro.hardware.presets import custom


class TestExploreArchitecture:
    def test_sweep_shapes(self, tiny_graph):
        base = custom(n_crossbars=2, neurons_per_crossbar=4, name="base")
        points = explore_architecture(
            tiny_graph, base, crossbar_sizes=[2, 4, 8], method="pacman",
            seed=0,
        )
        assert [p.neurons_per_crossbar for p in points] == [2, 4, 8]
        assert points[0].n_crossbars == 4
        assert points[-1].n_crossbars == 1

    def test_single_crossbar_all_local(self, tiny_graph):
        base = custom(n_crossbars=1, neurons_per_crossbar=8)
        (point,) = explore_architecture(
            tiny_graph, base, crossbar_sizes=[8], method="pacman"
        )
        assert point.global_energy_uj == 0.0
        assert point.global_spikes == 0.0
        assert point.local_energy_uj > 0.0

    def test_global_energy_decreases_with_size(self, tiny_graph):
        base = custom(n_crossbars=4, neurons_per_crossbar=2)
        points = explore_architecture(
            tiny_graph, base, crossbar_sizes=[2, 8], method="pacman"
        )
        assert points[0].global_energy_uj > points[-1].global_energy_uj

    def test_totals_consistent(self, tiny_graph):
        base = custom(n_crossbars=2, neurons_per_crossbar=4)
        points = explore_architecture(
            tiny_graph, base, crossbar_sizes=[4], method="pacman"
        )
        p = points[0]
        assert p.total_energy_uj == pytest.approx(
            p.local_energy_uj + p.global_energy_uj
        )


class TestEstimateEnergy:
    def test_all_local_zero(self, tiny_graph, two_cluster_arch):
        a = np.zeros(8, dtype=int)
        assert estimate_interconnect_energy_pj(
            tiny_graph, a, two_cluster_arch
        ) == 0.0

    def test_matches_noc_energy_when_uncongested(self, two_cluster_arch):
        """Analytic estimate equals simulated energy for delivered traffic.

        Requires a graph whose per-synapse traffic equals its source
        spike counts (as from_simulation guarantees); multicast is
        irrelevant here (one destination crossbar), so hops are exactly
        spikes x distance.
        """
        from repro.framework.pipeline import run_pipeline
        from repro.snn.graph import SpikeGraph
        spike_times = [np.linspace(0, 90, 10) for _ in range(8)]
        graph = SpikeGraph.from_edges(
            8,
            src=[0, 1, 2, 3, 4, 5, 6, 7],
            dst=[1, 2, 3, 4, 5, 6, 7, 0],
            traffic=[10.0] * 8,  # == spike counts, as in real graphs
            spike_times=spike_times,
            name="ring",
        )
        result = run_pipeline(graph, two_cluster_arch, method="pacman")
        estimate = estimate_interconnect_energy_pj(
            graph, result.mapping.assignment, two_cluster_arch
        )
        assert estimate == pytest.approx(result.report.global_energy_pj)

    def test_scales_with_distance(self, tiny_graph):
        near = custom(n_crossbars=2, neurons_per_crossbar=4,
                      interconnect="star")
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        e_star = estimate_interconnect_energy_pj(tiny_graph, a, near)
        far = custom(n_crossbars=2, neurons_per_crossbar=4,
                     interconnect="tree")
        e_tree = estimate_interconnect_energy_pj(tiny_graph, a, far)
        assert e_star == e_tree  # both are 2 hops for 2 crossbars


class TestExploreSwarmSize:
    def test_points_and_normalization(self, tiny_graph, two_cluster_arch):
        points = explore_swarm_size(
            tiny_graph, two_cluster_arch, swarm_sizes=[2, 20],
            n_iterations=10, seed=0,
        )
        assert [p.swarm_size for p in points] == [2, 20]
        norm = normalized_energies(points)
        assert min(norm) == 1.0
        assert all(v >= 1.0 for v in norm)

    def test_larger_swarm_no_worse(self, tiny_graph, two_cluster_arch):
        points = explore_swarm_size(
            tiny_graph, two_cluster_arch, swarm_sizes=[1, 40],
            n_iterations=15, seed=1,
        )
        assert points[1].global_spikes <= points[0].global_spikes
