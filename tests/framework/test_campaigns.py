"""Tests for Monte-Carlo fault campaigns and fault-aware mapping."""

import pytest

from repro.apps import build_application
from repro.core.mapper import map_snn
from repro.core.pso import PSOConfig
from repro.framework.artifacts import ArtifactCache
from repro.framework.pipeline import run_fault_campaign, run_fault_sweep
from repro.hardware.presets import architecture_for
from repro.noc.interconnect import NocConfig


@pytest.fixture
def graph():
    return build_application("hello_world", seed=1)


@pytest.fixture
def arch(graph):
    # Mesh fabric: link redundancy so random faults are survivable.
    return architecture_for(
        graph.n_neurons, neurons_per_crossbar=16,
        interconnect="mesh", name="campaign-test",
    )


@pytest.fixture
def mapping(graph, arch):
    return map_snn(graph, arch, method="pacman")


def _run(graph, arch, mapping, **kwargs):
    kwargs.setdefault("fault_levels", (0, 1, 2))
    kwargs.setdefault("draws", 3)
    kwargs.setdefault("campaign_seed", 7)
    return run_fault_campaign(
        graph, arch, mappings={"pacman": mapping}, **kwargs
    )


class TestRunFaultCampaign:
    def test_grid_shape_and_reproducibility(self, graph, arch, mapping):
        a = _run(graph, arch, mapping)
        b = _run(graph, arch, mapping)
        assert a.levels == (0, 1, 2)
        assert len(a.draws) == 3 * 3  # levels x draws
        assert a.draws == b.draws
        assert a.healthy == b.healthy

    def test_distinct_seeds_distinct_draws(self, graph, arch, mapping):
        a = _run(graph, arch, mapping)
        b = _run(graph, arch, mapping, campaign_seed=8)
        fails_a = [d.failed_links for d in a.draws if d.level]
        fails_b = [d.failed_links for d in b.draws if d.level]
        assert fails_a != fails_b

    def test_draws_within_level_independent(self, graph, arch, mapping):
        summary = _run(graph, arch, mapping)
        fails = [d.failed_links for d in summary.draws_for("pacman", 2)]
        assert len(set(fails)) > 1  # not the same fault set re-drawn

    def test_level_zero_uses_healthy_fabric(self, graph, arch, mapping):
        summary = _run(graph, arch, mapping)
        for d in summary.draws_for("pacman", 0):
            assert d.failed_links == ()
            assert d.mean_latency_cycles == pytest.approx(
                summary.baseline("pacman").mean_latency_cycles
            )

    def test_parallel_bit_identical(self, graph, arch, mapping):
        serial = _run(graph, arch, mapping)
        threaded = _run(graph, arch, mapping, workers=4)
        assert serial.draws == threaded.draws
        assert serial.healthy == threaded.healthy

    def test_fast_backend_campaign(self, graph, arch, mapping):
        ref = _run(graph, arch, mapping)
        fast = _run(graph, arch, mapping,
                    noc_config=NocConfig(backend="fast"))
        for a, b in zip(ref.draws, fast.draws):
            assert a.delivered_packets == b.delivered_packets
            assert a.mean_latency_cycles == pytest.approx(
                b.mean_latency_cycles
            )

    def test_resumable_matches_and_resumes(
        self, graph, arch, mapping, tmp_path
    ):
        baseline = _run(graph, arch, mapping)
        first = _run(graph, arch, mapping, state_dir=str(tmp_path))
        resumed = _run(graph, arch, mapping, state_dir=str(tmp_path))
        assert first.draws == baseline.draws
        assert resumed.draws == baseline.draws

    def test_resume_fingerprint_guards_grid(
        self, graph, arch, mapping, tmp_path
    ):
        _run(graph, arch, mapping, state_dir=str(tmp_path))
        with pytest.raises(ValueError, match="fingerprint"):
            _run(graph, arch, mapping, state_dir=str(tmp_path),
                 campaign_seed=99)

    def test_nonpositive_draws_rejected(self, graph, arch, mapping):
        with pytest.raises(ValueError, match="positive"):
            _run(graph, arch, mapping, draws=0)

    def test_empty_mappings_rejected(self, graph, arch):
        with pytest.raises(ValueError, match="at least one"):
            run_fault_campaign(graph, arch, mappings={})

    def test_auto_mapping_when_none_given(self, graph, arch):
        summary = run_fault_campaign(
            graph, arch, method="pacman", fault_levels=(0, 1), draws=2,
            campaign_seed=3,
        )
        assert summary.labels == ("pacman",)

    def test_cached_and_uncached_agree(self, graph, arch, mapping):
        plain = _run(graph, arch, mapping)
        cached = _run(graph, arch, mapping, cache=ArtifactCache())
        assert plain.draws == cached.draws

    def test_summary_stats_and_table(self, graph, arch, mapping):
        summary = _run(graph, arch, mapping)
        stats = summary.stats()
        assert len(stats) == len(summary.levels)
        healthy_row = stats[0]
        assert healthy_row.survival_rate == 1.0
        assert healthy_row.mean_latency_overhead == pytest.approx(1.0)
        for row in stats[1:]:
            assert 0.0 <= row.survival_rate <= 1.0
            assert row.p95_latency_overhead >= row.mean_latency_overhead * 0.5
        text = summary.table()
        assert "survival" in text and "p95" in text
        payload = summary.to_dict()
        assert payload["draws_per_level"] == 3
        assert len(payload["draws"]) == len(summary.draws)
        assert payload["stats"][0]["mapping"] == "pacman"

    def test_unknown_mapping_rejected(self, graph, arch, mapping):
        summary = _run(graph, arch, mapping)
        with pytest.raises(ValueError, match="no healthy baseline"):
            summary.baseline("nope")
        with pytest.raises(ValueError, match="no draws"):
            summary.survival_rate("pacman", 99)


class TestFaultSweepSatellites:
    """Regressions for the resume fingerprint and unseeded-draw caching."""

    def test_fingerprint_covers_noc_config(
        self, graph, arch, mapping, tmp_path
    ):
        kwargs = dict(fault_counts=(0, 1), method="pacman", fault_seed=3)
        run_fault_sweep(graph, arch, state_dir=str(tmp_path), **kwargs)
        with pytest.raises(ValueError, match="fingerprint"):
            run_fault_sweep(
                graph, arch, state_dir=str(tmp_path),
                noc_config=NocConfig(backend="fast"), **kwargs
            )

    def test_fingerprint_covers_pso_config(self, graph, arch, tmp_path):
        from repro.core.pso import PSOConfig

        kwargs = dict(fault_counts=(0, 1), method="pso", fault_seed=3,
                      seed=1)
        run_fault_sweep(
            graph, arch, state_dir=str(tmp_path),
            pso_config=PSOConfig(n_particles=6, n_iterations=2), **kwargs
        )
        with pytest.raises(ValueError, match="fingerprint"):
            run_fault_sweep(
                graph, arch, state_dir=str(tmp_path),
                pso_config=PSOConfig(n_particles=6, n_iterations=3),
                **kwargs
            )

    def test_unseeded_draws_never_hit_the_cache(
        self, graph, arch, monkeypatch
    ):
        cache = ArtifactCache()

        def poisoned(*args, **kwargs):
            raise AssertionError(
                "unseeded fault draw must not consult the cache"
            )

        monkeypatch.setattr(cache, "degraded_topology", poisoned)
        curve = run_fault_sweep(
            graph, arch, fault_counts=(0, 1), method="pacman",
            fault_seed=None, cache=cache,
        )
        assert len(curve.points) == 2

    def test_seeded_draws_do_hit_the_cache(self, graph, arch, monkeypatch):
        cache = ArtifactCache()
        calls = []
        original = cache.degraded_topology

        def spying(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(cache, "degraded_topology", spying)
        run_fault_sweep(
            graph, arch, fault_counts=(0, 1), method="pacman",
            fault_seed=3, cache=cache,
        )
        assert len(calls) == 1  # only the non-zero level draws faults


class TestDegradationCurveHealthy:
    def _curve(self, graph, arch, mapping, counts):
        return run_fault_sweep(
            graph, arch, fault_counts=counts, method="pacman", fault_seed=3
        )

    def test_missing_healthy_point_raises(self, graph, arch, mapping):
        curve = self._curve(graph, arch, mapping, (1, 2))
        with pytest.raises(ValueError, match="no healthy"):
            curve.healthy
        with pytest.raises(ValueError, match="no healthy"):
            curve.latency_overhead(curve.points[0])

    def test_healthy_point_found(self, graph, arch, mapping):
        curve = self._curve(graph, arch, mapping, (0, 1))
        assert curve.healthy.n_faults == 0
        assert curve.latency_overhead(curve.points[1]) >= 1.0


class TestFaultAwareMapping:
    @pytest.fixture
    def roomy_arch(self, graph):
        # 12x16 = 192 slots for 126 neurons: a 20% reservation
        # (12 usable slots per crossbar, 144 total) stays feasible.
        from repro.hardware.presets import custom

        return custom(12, 16, interconnect="mesh", name="roomy")

    def test_spare_capacity_reserves_headroom(self, graph, roomy_arch):
        fa = map_snn(graph, roomy_arch, method="pacman",
                     spare_capacity=0.2)
        import numpy as np

        loads = np.bincount(
            fa.assignment, minlength=roomy_arch.n_crossbars
        )
        reserve = int(np.ceil(roomy_arch.neurons_per_crossbar * 0.2))
        assert loads.max() <= roomy_arch.neurons_per_crossbar - reserve
        assert fa.extras["spare_capacity"] == 0.2

    def test_spare_capacity_validated(self, graph, arch):
        with pytest.raises(ValueError, match="spare_capacity"):
            map_snn(graph, arch, spare_capacity=1.0)
        with pytest.raises(ValueError, match="spare_capacity"):
            map_snn(graph, arch, spare_capacity=-0.1)

    def test_infeasible_reservation_rejected(self, graph, arch):
        with pytest.raises(ValueError, match="usable slots"):
            map_snn(graph, arch, spare_capacity=0.9)

    def test_zero_spare_is_bit_identical_to_default(self, graph, arch):
        small = PSOConfig(n_particles=6, n_iterations=3)
        a = map_snn(graph, arch, method="pso", seed=4, pso_config=small)
        b = map_snn(graph, arch, method="pso", seed=4, pso_config=small,
                    spare_capacity=0.0)
        assert (a.assignment == b.assignment).all()
        assert a.fitness == b.fitness

    def test_campaign_compares_two_mappings(self, graph, roomy_arch):
        base = map_snn(graph, roomy_arch, method="pacman")
        fa = map_snn(graph, roomy_arch, method="pacman",
                     spare_capacity=0.2)
        summary = run_fault_campaign(
            graph, roomy_arch,
            mappings={"baseline": base, "fault-aware": fa},
            fault_levels=(0, 2), draws=3, campaign_seed=11,
        )
        assert summary.labels == ("baseline", "fault-aware")
        # Identical fault draws are replayed against both mappings.
        for d_base, d_fa in zip(
            summary.draws_for("baseline", 2),
            summary.draws_for("fault-aware", 2),
        ):
            assert d_base.failed_links == d_fa.failed_links
            assert d_base.fault_seed == d_fa.fault_seed
