"""Serving layer: cache keys, coalescing, futures, resumable sweeps."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.apps import build_application
from repro.core.mapper import map_snn
from repro.core.pso import PSOConfig
from repro.framework.artifacts import (
    ArtifactCache,
    architecture_key,
    graph_token,
    hop_matrix_key,
    pipeline_token,
    stable_hash,
)
from repro.framework.pipeline import run_pipeline
from repro.framework.service import (
    MapRequest,
    MappingService,
    run_sweep_resumable,
)
from repro.hardware.presets import architecture_for, custom
from repro.noc.interconnect import NocConfig
from repro.noc.topology import build_topology, mesh_for


SMALL_PSO = PSOConfig(n_particles=6, n_iterations=4)


@pytest.fixture
def graph():
    return build_application("hello_world", seed=1)


@pytest.fixture
def arch(graph):
    return architecture_for(
        graph.n_neurons, neurons_per_crossbar=16,
        interconnect="mesh", name="svc-test",
    )


# -- cache-key stability -----------------------------------------------------


class TestKeyStability:
    def test_architecture_key_stable_across_processes(self, arch):
        """The content key must not depend on PYTHONHASHSEED."""
        script = (
            "from repro.hardware.presets import architecture_for\n"
            "from repro.framework.artifacts import architecture_key\n"
            f"a = architecture_for({arch.n_crossbars * arch.neurons_per_crossbar}, "
            f"neurons_per_crossbar={arch.neurons_per_crossbar}, "
            "interconnect='mesh', name='svc-test')\n"
            "print(architecture_key(a))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        keys = set()
        for hash_seed in ("0", "12345"):
            env["PYTHONHASHSEED"] = hash_seed
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, cwd="/root/repo",
                check=True,
            )
            keys.add(out.stdout.strip())
        keys.add(architecture_key(arch))
        assert len(keys) == 1, f"keys diverged: {keys}"

    def test_key_ignores_name_but_not_structure(self, arch):
        import dataclasses

        renamed = dataclasses.replace(arch, name="other-label")
        assert architecture_key(renamed) == architecture_key(arch)
        resized = dataclasses.replace(
            arch, neurons_per_crossbar=arch.neurons_per_crossbar * 2
        )
        assert architecture_key(resized) != architecture_key(arch)
        rewired = dataclasses.replace(arch, interconnect="tree")
        assert architecture_key(rewired) != architecture_key(arch)

    def test_topology_signature_distinguishes_kind_and_params(self):
        keys = {
            stable_hash(build_topology(kind, 8).content_signature())
            for kind in ("mesh", "tree", "star", "torus", "multichip")
        }
        assert len(keys) == 5
        assert stable_hash(mesh_for(8).content_signature()) != stable_hash(
            mesh_for(9).content_signature()
        )

    def test_hop_matrix_key_tracks_routing_algorithm(self):
        from repro.noc.routing import routing_for, shortest_path_routing

        topo = mesh_for(9)
        # Explicit default routing and implied default must unify.
        assert hop_matrix_key(topo) == hop_matrix_key(topo, routing_for(topo))
        assert hop_matrix_key(topo) != hop_matrix_key(
            topo, shortest_path_routing(topo)
        )

    def test_pipeline_token_tracks_faults_seed_and_method(self, graph, arch):
        base = dict(method="pso", seed=3, pso_config=SMALL_PSO)
        t0 = stable_hash(pipeline_token(graph, arch, **base))
        assert t0 == stable_hash(pipeline_token(graph, arch, **base))
        assert t0 != stable_hash(
            pipeline_token(graph, arch, **dict(base, seed=4))
        )
        assert t0 != stable_hash(
            pipeline_token(graph, arch, **dict(base, method="pacman"))
        )
        assert t0 != stable_hash(
            pipeline_token(graph, arch, **base, faults=2, fault_seed=1)
        )
        assert t0 != stable_hash(
            pipeline_token(graph, arch, **base, objective="spikes")
        )

    def test_graph_token_tracks_content(self, graph):
        other = build_application("hello_world", seed=2)
        assert stable_hash(graph_token(graph)) == stable_hash(graph_token(graph))
        assert stable_hash(graph_token(graph)) != stable_hash(graph_token(other))


# -- artifact sharing --------------------------------------------------------


class TestArtifactSharing:
    def test_hop_matrix_shared_across_fitness_instances(self, graph):
        from repro.core.fitness import InterconnectFitness
        from repro.noc.routing import routing_for

        cache = ArtifactCache()
        results = []
        for _ in range(3):
            topo = mesh_for(8)  # fresh instance each time, same content
            fit = InterconnectFitness(
                graph, hop_weighted=True, topology=topo,
                routing=routing_for(topo), cache=cache,
            )
            results.append(fit._hop_distances())
        assert results[0] is results[1] is results[2]
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 2

    def test_disk_roundtrip_and_corrupt_entry_discarded(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache.key("thing", ("token", 1))
        cache.put(key, np.arange(5), persist=True)

        fresh = ArtifactCache(str(tmp_path))
        found, value = fresh.get(key)
        assert found and np.array_equal(value, np.arange(5))
        assert fresh.stats["disk_hits"] == 1

        # Corrupt the entry on disk: the next cold lookup must discard
        # it and report a miss, never crash.
        path = os.path.join(str(tmp_path), f"{key}.pkl")
        with open(path, "wb") as fh:
            fh.write(b"junk that is not a pickle")
        cold = ArtifactCache(str(tmp_path))
        found, _ = cold.get(key)
        assert not found
        assert cold.stats["corrupt_discarded"] == 1
        assert not os.path.exists(path)

        # An entry whose payload is a valid pickle of the wrong shape is
        # equally discarded.
        with open(path, "wb") as fh:
            pickle.dump({"not": "a pair"}, fh)
        cold2 = ArtifactCache(str(tmp_path))
        found, _ = cold2.get(key)
        assert not found
        assert cold2.stats["corrupt_discarded"] == 1



# -- bounded in-memory layer -------------------------------------------------


class TestBoundedMemory:
    def test_lru_evicts_least_recently_used(self):
        cache = ArtifactCache(max_entries=3)
        for i in range(4):
            cache.put(f"k{i}", i)
        # k0 is the oldest entry and the only casualty.
        assert cache.get("k0") == (False, None)
        assert cache.get("k1") == (True, 1)
        assert cache.stats["evictions"] == 1
        # The hit freshened k1, so the next eviction takes k2.
        cache.put("k4", 4)
        assert cache.get("k2") == (False, None)
        assert cache.get("k1") == (True, 1)
        assert cache.stats["evictions"] == 2

    def test_unbounded_by_default(self):
        cache = ArtifactCache()
        for i in range(100):
            cache.put(f"k{i}", i)
        assert cache.stats["evictions"] == 0
        assert cache.get("k0") == (True, 0)

    def test_eviction_drops_memory_not_disk(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), max_entries=1)
        key = cache.key("thing", ("token", 1))
        cache.put(key, np.arange(3), persist=True)
        cache.put("other", 0)  # evicts the persisted entry from memory
        assert cache.stats["evictions"] == 1
        found, value = cache.get(key)  # ...but disk still serves it
        assert found and np.array_equal(value, np.arange(3))
        assert cache.stats["disk_hits"] == 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_service_owned_cache_is_bounded(self):
        with MappingService(max_entries=5) as service:
            assert service.cache.max_entries == 5
        with pytest.raises(ValueError):
            MappingService(cache=ArtifactCache(), max_entries=5)


# -- result memoization ------------------------------------------------------


class TestResultMemo:
    def test_cached_pipeline_is_bit_identical(self, graph, arch):
        baseline = run_pipeline(graph, arch, seed=5, pso_config=SMALL_PSO)
        cache = ArtifactCache()
        first = run_pipeline(
            graph, arch, seed=5, pso_config=SMALL_PSO, cache=cache
        )
        repeat = run_pipeline(
            graph, arch, seed=5, pso_config=SMALL_PSO, cache=cache
        )
        for other in (first, repeat):
            assert np.array_equal(
                baseline.mapping.assignment, other.mapping.assignment
            )
            assert baseline.schedule == other.schedule
            assert baseline.mapping.fitness == other.mapping.fitness
            assert (
                baseline.report.total_energy_pj == other.report.total_energy_pj
            )

    def test_cached_result_is_a_defensive_copy(self, graph, arch):
        cache = ArtifactCache()
        first = run_pipeline(
            graph, arch, seed=5, pso_config=SMALL_PSO, cache=cache
        )
        first.mapping.assignment[:] = -1  # caller misbehaves
        repeat = run_pipeline(
            graph, arch, seed=5, pso_config=SMALL_PSO, cache=cache
        )
        assert int(repeat.mapping.assignment.min()) >= 0

    def test_unseeded_requests_are_not_memoized(self, graph, arch):
        # A memoized repeat would return the stored result, whose
        # wall_time_s is a bit-exact copy; independent runs never share
        # the exact perf_counter delta.
        cache = ArtifactCache()
        a = run_pipeline(graph, arch, seed=None, method="random", cache=cache)
        b = run_pipeline(graph, arch, seed=None, method="random", cache=cache)
        assert a.mapping.wall_time_s != b.mapping.wall_time_s

    def test_map_snn_memo_respects_kwargs(self, graph, arch):
        cache = ArtifactCache()
        # Seeded, no kwargs: the repeat is served from the memo, so the
        # recorded wall time is bit-identical.
        a = map_snn(graph, arch, method="annealing", seed=1, cache=cache)
        b = map_snn(graph, arch, method="annealing", seed=1, cache=cache)
        assert a.wall_time_s == b.wall_time_s
        assert np.array_equal(a.assignment, b.assignment)
        # Free-form kwargs opt the call out of memoization entirely
        # (repr-keyed kwargs could collide), so both calls really run.
        from repro.core.baselines.annealing import AnnealingConfig

        fast = AnnealingConfig(n_steps=50)
        c = map_snn(
            graph, arch, method="annealing", seed=1, cache=cache, config=fast
        )
        d = map_snn(
            graph, arch, method="annealing", seed=1, cache=cache, config=fast
        )
        assert c.wall_time_s != d.wall_time_s


# -- the service -------------------------------------------------------------


class TestMappingService:
    def test_serve_batch_matches_one_shot(self, graph, arch):
        ncfg = NocConfig(backend="fast")
        seeds = (1, 2)
        solo = [
            run_pipeline(
                graph, arch, seed=s, pso_config=SMALL_PSO,
                noc_config=ncfg, objective="noc",
            )
            for s in seeds
        ]
        service = MappingService()
        served = service.serve_batch(
            [
                MapRequest(
                    graph=graph, architecture=arch, seed=s,
                    pso_config=SMALL_PSO, noc_config=ncfg, objective="noc",
                )
                for s in seeds
            ]
        )
        for a, b in zip(solo, served):
            assert np.array_equal(a.mapping.assignment, b.mapping.assignment)
            assert a.schedule == b.schedule
            assert a.noc_stats.total_hops() == b.noc_stats.total_hops()
        # The two swarms really shared batches, not just ran side by side.
        assert service.coalescer_stats["merged_flushes"] > 0
        assert service.coalescer_stats["member_batches"] > (
            service.coalescer_stats["flushes"]
        )

    def test_mixed_batch_coalesces_only_matching_requests(self, graph, arch):
        ncfg = NocConfig(backend="fast")
        service = MappingService()
        requests = [
            MapRequest(
                graph=graph, architecture=arch, seed=1,
                pso_config=SMALL_PSO, noc_config=ncfg, objective="noc",
            ),
            MapRequest(graph=graph, architecture=arch, method="pacman"),
            MapRequest(
                graph=graph, architecture=arch, seed=2,
                pso_config=SMALL_PSO, noc_config=ncfg, objective="noc",
            ),
        ]
        served = service.serve_batch(requests)
        assert served[1].mapping.method == "pacman"
        ref = run_pipeline(graph, arch, method="pacman")
        assert np.array_equal(
            served[1].mapping.assignment, ref.mapping.assignment
        )
        assert service.coalescer_stats["merged_flushes"] > 0

    def test_submit_futures_match_serve(self, graph, arch):
        with MappingService() as service:
            futures = [
                service.submit(
                    MapRequest(
                        graph=graph, architecture=arch, seed=s,
                        pso_config=SMALL_PSO,
                    )
                )
                for s in (1, 2, 3)
            ]
            results = [f.result(timeout=300) for f in futures]
        for s, res in zip((1, 2, 3), results):
            ref = run_pipeline(graph, arch, seed=s, pso_config=SMALL_PSO)
            assert np.array_equal(
                res.mapping.assignment, ref.mapping.assignment
            )

    def test_submit_propagates_errors(self, graph):
        bad_arch = custom(2, 4, name="too-small")  # graph cannot fit
        with MappingService() as service:
            future = service.submit(
                MapRequest(graph=graph, architecture=bad_arch)
            )
            with pytest.raises(ValueError):
                future.result(timeout=60)

    def test_repeat_request_served_from_cache(self, graph, arch):
        service = MappingService()
        first = service.serve(
            MapRequest(
                graph=graph, architecture=arch, seed=9, pso_config=SMALL_PSO
            )
        )
        hits_before = service.cache.stats["hits"]
        repeat = service.serve(
            MapRequest(
                graph=graph, architecture=arch, seed=9, pso_config=SMALL_PSO
            )
        )
        assert service.cache.stats["hits"] > hits_before
        assert np.array_equal(
            first.mapping.assignment, repeat.mapping.assignment
        )

    def test_warm_request_uses_recorded_state(self, graph, arch):
        service = MappingService()
        cold = service.serve(
            MapRequest(
                graph=graph, architecture=arch, seed=11, pso_config=SMALL_PSO
            )
        )
        assert (
            service.cache.warm_assignment(graph, arch, "packets") is not None
        )
        warm = service.serve(
            MapRequest(
                graph=graph, architecture=arch, seed=12,
                pso_config=SMALL_PSO, warm=True,
            )
        )
        # Warm seeds are evaluated exactly, so the warmed swarm can never
        # end worse than the recorded optimum it started from.
        assert warm.mapping.extras["packets"] <= cold.mapping.extras["packets"]


# -- resumable sweeps --------------------------------------------------------


class TestResumableSweep:
    def test_resume_skips_exactly_processed_indices(self, tmp_path):
        state = str(tmp_path)
        calls = []

        def flaky(i, item):
            calls.append(i)
            if i == 2:
                raise RuntimeError("killed mid-campaign")
            return item * 10

        with pytest.raises(RuntimeError):
            run_sweep_resumable(
                [1, 2, 3, 4], flaky, state, campaign="c", fingerprint="f"
            )
        assert calls == [0, 1, 2]

        resumed_calls = []

        def healthy(i, item):
            resumed_calls.append(i)
            return item * 10

        run = run_sweep_resumable(
            [1, 2, 3, 4], healthy, state, campaign="c", fingerprint="f"
        )
        assert resumed_calls == [2, 3]
        assert run.skipped == [0, 1]
        assert run.computed == [2, 3]
        assert run.results == [10, 20, 30, 40]
        assert run.complete

    def test_fingerprint_mismatch_raises(self, tmp_path):
        state = str(tmp_path)
        run_sweep_resumable(
            [1, 2], lambda i, x: x, state, campaign="c", fingerprint="a"
        )
        with pytest.raises(ValueError, match="fingerprint"):
            run_sweep_resumable(
                [1, 2], lambda i, x: x, state, campaign="c", fingerprint="b"
            )

    def test_resume_false_discards_state(self, tmp_path):
        state = str(tmp_path)
        run_sweep_resumable(
            [1, 2], lambda i, x: x + 1, state, campaign="c", fingerprint="a"
        )
        run = run_sweep_resumable(
            [1, 2], lambda i, x: x + 100, state, campaign="c",
            fingerprint="a", resume=False,
        )
        assert run.results == [101, 102]
        assert run.skipped == []

    def test_corrupt_point_artifact_is_recomputed(self, tmp_path):
        state = str(tmp_path)
        run_sweep_resumable(
            [5, 6], lambda i, x: x, state, campaign="c", fingerprint="a"
        )
        with open(os.path.join(state, "c.point0000.pkl"), "wb") as fh:
            fh.write(b"garbage")
        recomputed = []
        run = run_sweep_resumable(
            [5, 6],
            lambda i, x: recomputed.append(i) or x,
            state, campaign="c", fingerprint="a",
        )
        assert recomputed == [0]
        assert run.results == [5, 6]

    def test_on_error_continue_records_failures(self, tmp_path):
        def fn(i, item):
            if i == 1:
                raise ValueError("bad point")
            return item

        run = run_sweep_resumable(
            [1, 2, 3], fn, str(tmp_path), campaign="c",
            fingerprint="a", on_error="continue",
        )
        assert list(run.failures) == [1]
        assert "bad point" in run.failures[1]
        assert run.computed == [0, 2]
        assert not run.complete

    def test_fault_sweep_resumes(self, graph, arch, tmp_path):
        from repro.framework.pipeline import run_fault_sweep

        cache = ArtifactCache()
        baseline = run_fault_sweep(
            graph, arch, fault_counts=(0, 1), method="pacman",
            fault_seed=3, cache=cache,
        )
        resumable = run_fault_sweep(
            graph, arch, fault_counts=(0, 1), method="pacman",
            fault_seed=3, cache=cache, state_dir=str(tmp_path),
        )
        resumed = run_fault_sweep(
            graph, arch, fault_counts=(0, 1), method="pacman",
            fault_seed=3, cache=cache, state_dir=str(tmp_path),
        )
        for curve in (resumable, resumed):
            assert len(curve.points) == len(baseline.points)
            for a, b in zip(baseline.points, curve.points):
                assert a.n_faults == b.n_faults
                assert a.global_energy_pj == b.global_energy_pj
                assert a.mean_latency_cycles == b.mean_latency_cycles


# -- benchmark aggregation ---------------------------------------------------


class TestAggregate:
    def test_aggregate_merges_leg_reports(self, tmp_path):
        import json

        legs = {
            "fastsim_speedup.json": {"speedup": 12.0},
            "fault_tolerance.json": {"delivery": 1.0},
            "service_bench.json": {"cache_hit_speedup": 5.0},
        }
        for sub, (name, data) in zip(("a", "b", "c"), legs.items()):
            d = tmp_path / sub
            d.mkdir()
            with open(d / name, "w") as fh:
                json.dump(data, fh)
        out = tmp_path / "BENCH_summary.json"
        subprocess.run(
            [
                sys.executable, "benchmarks/aggregate.py",
                "--input-dir", str(tmp_path),
                "--output", str(out),
            ],
            check=True, cwd="/root/repo",
        )
        with open(out) as fh:
            summary = json.load(fh)
        assert summary["legs"]["fastsim_speedup"]["runs"][0]["data"] == {
            "speedup": 12.0
        }
        assert summary["legs"]["service_bench"]["runs"][0]["data"] == {
            "cache_hit_speedup": 5.0
        }
        assert "parallel_speedup" in summary["missing"]
        assert summary["n_legs_found"] == 3
