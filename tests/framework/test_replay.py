"""Tests for post-interconnect spike replay."""

import numpy as np
import pytest

from repro.framework.pipeline import run_pipeline
from repro.framework.replay import (
    delivered_spike_trains,
    perceived_spike_trains,
    pooled_arrivals_at,
    timing_error_summary,
)


@pytest.fixture
def pipeline_result(tiny_graph, two_cluster_arch):
    return run_pipeline(tiny_graph, two_cluster_arch, method="pacman")


class TestDeliveredTrains:
    def test_only_global_flows(self, pipeline_result):
        flows = delivered_spike_trains(pipeline_result)
        assignment = pipeline_result.mapping.assignment
        for (neuron, crossbar) in flows:
            assert assignment[neuron] != crossbar  # crossed the NoC

    def test_counts_match_noc(self, pipeline_result):
        flows = delivered_spike_trains(pipeline_result)
        total = sum(t.size for t in flows.values())
        assert total == pipeline_result.noc_stats.delivered_count

    def test_times_sorted_and_after_injection(self, pipeline_result):
        for times in delivered_spike_trains(pipeline_result).values():
            assert (np.diff(times) >= 0).all()
            assert (times >= 0).all()


class TestPerceivedTrains:
    def test_local_flows_keep_original_timing(self, pipeline_result):
        graph = pipeline_result.graph
        assignment = pipeline_result.mapping.assignment
        trains = perceived_spike_trains(pipeline_result)
        # Neuron 0's targets are local under the pacman split.
        own = int(assignment[0])
        assert np.array_equal(trains[(0, own)], graph.spike_times[0])

    def test_global_flows_delayed(self, pipeline_result):
        graph = pipeline_result.graph
        assignment = pipeline_result.mapping.assignment
        trains = perceived_spike_trains(pipeline_result)
        # The bridge neuron 3 -> remote crossbar flow exists and every
        # arrival is strictly later than the corresponding send.
        remote = 1 - int(assignment[3])
        delivered = trains[(3, remote)]
        source = graph.spike_times[3][: delivered.size]
        assert (delivered > source).all()


class TestPooledArrivals:
    def test_pooled_sorted(self, pipeline_result):
        pooled = pooled_arrivals_at(pipeline_result, 0)
        assert (np.diff(pooled) >= 0).all()
        assert pooled.size > 0

    def test_absent_crossbar_empty(self, pipeline_result):
        assert pooled_arrivals_at(pipeline_result, 99).size == 0


class TestTimingErrorSummary:
    def test_summary_fields(self, pipeline_result):
        summary = timing_error_summary(pipeline_result)
        assert summary["max_shift_ms"] >= summary["mean_shift_ms"] >= 0
        assert summary["n_flows"] >= 1

    def test_no_global_traffic_zero(self, tiny_graph):
        from repro.hardware.presets import custom
        arch = custom(n_crossbars=1, neurons_per_crossbar=8)
        result = run_pipeline(tiny_graph, arch, method="pacman")
        summary = timing_error_summary(result)
        assert summary == {
            "mean_shift_ms": 0.0, "max_shift_ms": 0.0, "n_flows": 0,
        }
