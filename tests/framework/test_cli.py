"""Tests for the command-line interface."""

import pytest

from repro.framework.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map", "--app", "hello_world"])
        assert args.method == "pso"
        assert args.particles == 100

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["map", "--app", "x", "--method", "magic"]
            )


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "hello_world" in out
        assert "pso" in out

    def test_map_small(self, capsys):
        code = main([
            "map", "--app", "synth_1x20", "--seed", "3",
            "--duration", "100", "--crossbars", "3", "--capacity", "10",
            "--particles", "10", "--iterations", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ISI distortion" in out

    def test_compare_small(self, capsys):
        code = main([
            "compare", "--app", "synth_1x20", "--seed", "3",
            "--duration", "100", "--crossbars", "3", "--capacity", "10",
            "--particles", "10", "--iterations", "5",
            "--methods", "pacman", "pso",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pacman" in out and "pso" in out

    def test_explore_small(self, capsys):
        code = main([
            "explore", "--app", "synth_1x20", "--seed", "3",
            "--duration", "100", "--sizes", "10", "30",
            "--particles", "10", "--iterations", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "neurons/xbar" in out

    def test_map_with_arch_config(self, tmp_path, capsys):
        config = tmp_path / "chip.yaml"
        config.write_text(
            "name: test-chip\nn_crossbars: 3\nneurons_per_crossbar: 10\n",
            encoding="utf-8",
        )
        code = main([
            "map", "--app", "synth_1x20", "--seed", "3",
            "--duration", "100", "--arch-config", str(config),
            "--particles", "10", "--iterations", "5",
        ])
        assert code == 0
        assert "test-chip" in capsys.readouterr().out


class TestMultiChipCli:
    def test_chip_flag_defaults(self):
        args = build_parser().parse_args(["map", "--app", "hello_world"])
        assert args.chips == 1
        assert args.chip_topology is None
        assert args.bridge_latency == 4
        assert args.bridge_energy is None

    def test_map_two_chips(self, capsys):
        code = main([
            "map", "--app", "synth_1x20", "--seed", "3",
            "--duration", "100", "--crossbars", "4", "--capacity", "10",
            "--interconnect", "mesh", "--chips", "2",
            "--bridge-latency", "2", "--bridge-energy", "60",
            "--particles", "10", "--iterations", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 chips of mesh" in out
        assert "Inter-chip hops" in out

    def test_explore_chip_counts(self, capsys):
        code = main([
            "explore", "--app", "synth_1x20", "--seed", "3",
            "--duration", "100", "--crossbars", "4", "--capacity", "10",
            "--interconnect", "mesh", "--chip-counts", "1", "2",
            "--method", "pacman", "--particles", "5", "--iterations", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chips" in out
        assert "inter-chip hops" in out

    def test_chip_topology_overrides_interconnect(self):
        args = build_parser().parse_args([
            "map", "--app", "x", "--chips", "2", "--chip-topology", "star",
        ])
        assert args.chip_topology == "star"

    def test_explore_size_sweep_honors_chip_flags(self, capsys):
        """--chips applies to the crossbar-size sweep, not only --chip-counts."""
        args = [
            "explore", "--app", "synth_1x20", "--seed", "3",
            "--duration", "100", "--sizes", "10",
            "--interconnect", "mesh", "--method", "pacman",
            "--particles", "5", "--iterations", "2",
        ]
        assert main(args) == 0
        flat_out = capsys.readouterr().out
        assert main(args + ["--chips", "2", "--bridge-latency", "8"]) == 0
        split_out = capsys.readouterr().out

        def latency(out):
            row = [ln for ln in out.splitlines() if ln.startswith("10")][0]
            return int(row.split("|")[-1])

        assert latency(split_out) > latency(flat_out)


class TestServe:
    @staticmethod
    def _write_requests(tmp_path, specs):
        import json

        path = tmp_path / "requests.json"
        path.write_text(json.dumps(specs))
        return str(path)

    def test_serve_coalesces_same_workload_noc_requests(
        self, tmp_path, capsys
    ):
        """`map_seed` reseeds only the mapper, keeping graphs coalescible."""
        spec = {
            "app": "synth_1x20", "seed": 7, "duration": 100,
            "crossbars": 3, "capacity": 10, "objective": "noc",
            "particles": 5, "iterations": 2,
        }
        requests = self._write_requests(
            tmp_path,
            [{**spec, "map_seed": 1}, {**spec, "map_seed": 2}],
        )
        code = main([
            "serve", "--requests", requests,
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "synth_1x20#0" in out and "synth_1x20#1" in out
        assert "cache:" in out
        coalescer = [ln for ln in out.splitlines() if "coalescer:" in ln]
        assert coalescer and "merged_flushes=0" not in coalescer[0]

    def test_serve_rejects_unknown_keys(self, tmp_path, capsys):
        requests = self._write_requests(
            tmp_path, [{"app": "synth_1x20", "bogus": 1}]
        )
        assert main(["serve", "--requests", requests]) == 2
        assert "unknown keys" in capsys.readouterr().err

    def test_explore_resume_requires_cache_dir(self, capsys):
        code = main([
            "explore", "--app", "synth_1x20", "--sizes", "10", "--resume",
        ])
        assert code == 2
        assert "--cache-dir" in capsys.readouterr().err
