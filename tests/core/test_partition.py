"""Tests for partition representation and constraint handling."""

import numpy as np
import pytest

from repro.core.partition import (
    Partition,
    is_feasible,
    random_assignment,
    repair_assignment,
)


class TestPartition:
    def test_valid_partition(self):
        p = Partition(assignment=np.array([0, 0, 1, 1]), n_clusters=2,
                      capacity=2)
        assert p.n_neurons == 4
        assert p.cluster_sizes().tolist() == [2, 2]

    def test_capacity_violation_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            Partition(assignment=np.array([0, 0, 0]), n_clusters=2, capacity=2)

    def test_out_of_range_cluster_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Partition(assignment=np.array([0, 2]), n_clusters=2, capacity=2)

    def test_negative_cluster_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Partition(assignment=np.array([0, -1]), n_clusters=2, capacity=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Partition(assignment=np.array([], dtype=int), n_clusters=2,
                      capacity=2)

    def test_one_hot_matches_paper_x(self):
        p = Partition(assignment=np.array([1, 0]), n_clusters=2, capacity=1)
        x = p.one_hot()
        assert x.tolist() == [[0.0, 1.0], [1.0, 0.0]]
        # Eq. 4: every row sums to one.
        assert (x.sum(axis=1) == 1).all()

    def test_neurons_of(self):
        p = Partition(assignment=np.array([0, 1, 0, 1]), n_clusters=2,
                      capacity=2)
        assert p.neurons_of(0).tolist() == [0, 2]

    def test_utilization(self):
        p = Partition(assignment=np.array([0, 1]), n_clusters=2, capacity=2)
        assert p.utilization() == 0.5


class TestIsFeasible:
    def test_good(self):
        assert is_feasible(np.array([0, 1, 0]), 2, 2)

    def test_overfull(self):
        assert not is_feasible(np.array([0, 0, 0]), 2, 2)

    def test_bad_range(self):
        assert not is_feasible(np.array([0, 5]), 2, 2)

    def test_empty(self):
        assert not is_feasible(np.array([], dtype=int), 2, 2)


class TestRepairAssignment:
    def test_feasible_untouched(self):
        a = np.array([0, 1, 0, 1])
        repaired = repair_assignment(a, 2, 2, rng=0)
        assert np.array_equal(repaired, a)

    def test_overfull_fixed(self):
        a = np.array([0, 0, 0, 0])
        repaired = repair_assignment(a, 2, 2, rng=0)
        assert is_feasible(repaired, 2, 2)

    def test_input_not_mutated(self):
        a = np.array([0, 0, 0, 0])
        repair_assignment(a, 2, 2, rng=0)
        assert (a == 0).all()

    def test_impossible_raises(self):
        with pytest.raises(ValueError, match="cannot fit"):
            repair_assignment(np.zeros(5, dtype=int), 2, 2)

    def test_move_cost_keeps_expensive_neurons(self):
        # Cluster 0 over capacity by 2; costs make neurons 0,1 cheapest.
        a = np.zeros(4, dtype=int)
        cost = np.array([0.0, 1.0, 100.0, 100.0])
        repaired = repair_assignment(a, 2, 2, rng=0, move_cost=cost)
        assert repaired[2] == 0 and repaired[3] == 0
        assert repaired[0] == 1 and repaired[1] == 1

    def test_deterministic_with_seed(self):
        a = np.zeros(6, dtype=int)
        r1 = repair_assignment(a, 3, 2, rng=42)
        r2 = repair_assignment(a, 3, 2, rng=42)
        assert np.array_equal(r1, r2)


class TestRandomAssignment:
    def test_always_feasible(self):
        for seed in range(20):
            a = random_assignment(10, 3, 4, rng=seed)
            assert is_feasible(a, 3, 4)

    def test_tight_fit(self):
        a = random_assignment(12, 3, 4, rng=0)
        assert np.bincount(a, minlength=3).tolist() == [4, 4, 4]

    def test_impossible_raises(self):
        with pytest.raises(ValueError):
            random_assignment(13, 3, 4)
