"""Tests for partition representation and constraint handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    Partition,
    is_feasible,
    random_assignment,
    repair_assignment,
    repair_assignment_reference,
    repair_batch,
)


class TestPartition:
    def test_valid_partition(self):
        p = Partition(assignment=np.array([0, 0, 1, 1]), n_clusters=2,
                      capacity=2)
        assert p.n_neurons == 4
        assert p.cluster_sizes().tolist() == [2, 2]

    def test_capacity_violation_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            Partition(assignment=np.array([0, 0, 0]), n_clusters=2, capacity=2)

    def test_out_of_range_cluster_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Partition(assignment=np.array([0, 2]), n_clusters=2, capacity=2)

    def test_negative_cluster_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Partition(assignment=np.array([0, -1]), n_clusters=2, capacity=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Partition(assignment=np.array([], dtype=int), n_clusters=2,
                      capacity=2)

    def test_one_hot_matches_paper_x(self):
        p = Partition(assignment=np.array([1, 0]), n_clusters=2, capacity=1)
        x = p.one_hot()
        assert x.tolist() == [[0.0, 1.0], [1.0, 0.0]]
        # Eq. 4: every row sums to one.
        assert (x.sum(axis=1) == 1).all()

    def test_neurons_of(self):
        p = Partition(assignment=np.array([0, 1, 0, 1]), n_clusters=2,
                      capacity=2)
        assert p.neurons_of(0).tolist() == [0, 2]

    def test_utilization(self):
        p = Partition(assignment=np.array([0, 1]), n_clusters=2, capacity=2)
        assert p.utilization() == 0.5


class TestIsFeasible:
    def test_good(self):
        assert is_feasible(np.array([0, 1, 0]), 2, 2)

    def test_overfull(self):
        assert not is_feasible(np.array([0, 0, 0]), 2, 2)

    def test_bad_range(self):
        assert not is_feasible(np.array([0, 5]), 2, 2)

    def test_empty(self):
        assert not is_feasible(np.array([], dtype=int), 2, 2)


class TestRepairAssignment:
    def test_feasible_untouched(self):
        a = np.array([0, 1, 0, 1])
        repaired = repair_assignment(a, 2, 2, rng=0)
        assert np.array_equal(repaired, a)

    def test_overfull_fixed(self):
        a = np.array([0, 0, 0, 0])
        repaired = repair_assignment(a, 2, 2, rng=0)
        assert is_feasible(repaired, 2, 2)

    def test_input_not_mutated(self):
        a = np.array([0, 0, 0, 0])
        repair_assignment(a, 2, 2, rng=0)
        assert (a == 0).all()

    def test_impossible_raises(self):
        with pytest.raises(ValueError, match="cannot fit"):
            repair_assignment(np.zeros(5, dtype=int), 2, 2)

    def test_move_cost_keeps_expensive_neurons(self):
        # Cluster 0 over capacity by 2; costs make neurons 0,1 cheapest.
        a = np.zeros(4, dtype=int)
        cost = np.array([0.0, 1.0, 100.0, 100.0])
        repaired = repair_assignment(a, 2, 2, rng=0, move_cost=cost)
        assert repaired[2] == 0 and repaired[3] == 0
        assert repaired[0] == 1 and repaired[1] == 1

    def test_deterministic_with_seed(self):
        a = np.zeros(6, dtype=int)
        r1 = repair_assignment(a, 3, 2, rng=42)
        r2 = repair_assignment(a, 3, 2, rng=42)
        assert np.array_equal(r1, r2)


class TestHeapRepairMatchesReference:
    """The heap-based repair must replay the argmin scan bit-for-bit."""

    def test_move_cost_path_equivalence(self):
        rng = np.random.default_rng(11)
        for _ in range(60):
            c = int(rng.integers(1, 9))
            cap = int(rng.integers(1, 12))
            n = int(rng.integers(1, c * cap + 1))
            a = rng.integers(0, c, size=n)
            cost = rng.uniform(0, 4, n)
            if rng.random() < 0.4:
                cost = np.round(cost)  # force cost ties
            assert np.array_equal(
                repair_assignment(a, c, cap, move_cost=cost),
                repair_assignment_reference(a, c, cap, move_cost=cost),
            )

    def test_random_path_equivalence(self):
        rng = np.random.default_rng(12)
        for _ in range(40):
            c = int(rng.integers(2, 7))
            cap = int(rng.integers(2, 9))
            n = int(rng.integers(2, c * cap + 1))
            a = rng.integers(0, c, size=n)
            seed = int(rng.integers(0, 2**31))
            assert np.array_equal(
                repair_assignment(a, c, cap, rng=seed),
                repair_assignment_reference(a, c, cap, rng=seed),
            )


class TestRepairBatch:
    def _loop(self, batch, c, cap, cost):
        return np.stack([
            repair_assignment_reference(batch[i], c, cap, move_cost=cost)
            for i in range(batch.shape[0])
        ])

    def test_feasible_batch_untouched(self):
        batch = np.array([[0, 1, 0, 1], [1, 1, 0, 0]])
        out = repair_batch(batch, 2, 2, move_cost=np.zeros(4))
        assert np.array_equal(out, batch)
        assert out is not batch

    def test_overfull_rows_match_looped_reference(self):
        batch = np.array([
            [0, 0, 0, 0, 1, 1],   # over-full cluster 0
            [0, 1, 0, 1, 2, 2],   # feasible
            [2, 2, 2, 2, 2, 2],   # one cluster holds everything
        ])
        cost = np.array([5.0, 1.0, 1.0, 3.0, 0.0, 2.0])
        out = repair_batch(batch, 3, 2, move_cost=cost)
        assert np.array_equal(out, self._loop(batch, 3, 2, cost))

    def test_all_rows_overfull(self):
        batch = np.zeros((4, 6), dtype=np.int64)  # every particle infeasible
        cost = np.arange(6.0)
        out = repair_batch(batch, 3, 2, move_cost=cost)
        assert np.array_equal(out, self._loop(batch, 3, 2, cost))
        for row in out:
            assert is_feasible(row, 3, 2)

    def test_input_not_mutated(self):
        batch = np.zeros((2, 4), dtype=np.int64)
        repair_batch(batch, 2, 2, move_cost=np.arange(4.0))
        assert (batch == 0).all()

    def test_random_path_uses_per_particle_child_streams(self):
        """Child seeds are one fixed-size draw: same recipe as the old
        BinaryPSO._repair_batch, so particle i's randomness is a function
        of (rng, i) alone."""
        batch = np.array([
            [0, 0, 0, 0, 1, 1],
            [0, 1, 0, 1, 1, 0],
            [1, 1, 1, 1, 0, 0],
        ])
        out = repair_batch(batch, 2, 3, rng=np.random.default_rng(9))
        rng = np.random.default_rng(9)
        child = rng.integers(0, 2**63 - 1, size=3)
        expected = batch.copy()
        for i in range(3):
            if np.bincount(expected[i], minlength=2).max() > 3:
                expected[i] = repair_assignment_reference(
                    expected[i], 2, 3, rng=np.random.default_rng(int(child[i]))
                )
        assert np.array_equal(out, expected)

    def test_random_path_draw_is_feasibility_independent(self):
        """The child-seed draw happens even for all-feasible batches, so
        downstream consumers of the shared rng see a fixed stream."""
        rng1 = np.random.default_rng(3)
        repair_batch(np.array([[0, 1]]), 2, 1, rng=rng1)
        rng2 = np.random.default_rng(3)
        repair_batch(np.array([[0, 0]]), 2, 1, rng=rng2)
        assert rng1.integers(0, 2**31) == rng2.integers(0, 2**31)

    def test_move_cost_path_consumes_no_randomness(self):
        rng = np.random.default_rng(4)
        before = rng.bit_generator.state
        repair_batch(np.zeros((3, 4), dtype=np.int64), 2, 2,
                     rng=rng, move_cost=np.arange(4.0))
        assert rng.bit_generator.state == before

    def test_impossible_raises(self):
        with pytest.raises(ValueError, match="cannot fit"):
            repair_batch(np.zeros((2, 5), dtype=np.int64), 2, 2)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            repair_batch(np.zeros(4, dtype=np.int64), 2, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            repair_batch(np.array([[0, 5]]), 2, 2)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_hypothesis_equivalence_move_cost(self, data):
        c = data.draw(st.integers(1, 6), label="clusters")
        cap = data.draw(st.integers(1, 6), label="capacity")
        n = data.draw(st.integers(1, c * cap), label="neurons")
        p = data.draw(st.integers(1, 5), label="particles")
        batch = np.array(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, c - 1), min_size=n, max_size=n),
                    min_size=p, max_size=p,
                ),
                label="assignments",
            ),
            dtype=np.int64,
        )
        cost = np.array(
            data.draw(
                st.lists(
                    st.floats(0.0, 10.0, allow_nan=False), min_size=n, max_size=n
                ),
                label="cost",
            )
        )
        out = repair_batch(batch, c, cap, move_cost=cost)
        assert np.array_equal(out, self._loop(batch, c, cap, cost))
        for row in out:
            assert is_feasible(row, c, cap)


class TestRandomAssignment:
    def test_always_feasible(self):
        for seed in range(20):
            a = random_assignment(10, 3, 4, rng=seed)
            assert is_feasible(a, 3, 4)

    def test_tight_fit(self):
        a = random_assignment(12, 3, 4, rng=0)
        assert np.bincount(a, minlength=3).tolist() == [4, 4, 4]

    def test_impossible_raises(self):
        with pytest.raises(ValueError):
            random_assignment(13, 3, 4)
