"""Tests for cluster-to-tile placement."""

import numpy as np
import pytest

from repro.core.placement import apply_placement, place_clusters, placement_cost
from repro.noc.routing import routing_for
from repro.noc.topology import tree


class TestPlaceClusters:
    def test_heavy_pair_becomes_adjacent(self):
        """Two chatty clusters land on sibling leaves of the tree."""
        topo = tree(4, arity=2)  # siblings (0,1) and (2,3): distance 2
        routing = routing_for(topo)
        traffic = np.zeros((4, 4))
        traffic[0, 3] = 100.0  # clusters 0 and 3 talk heavily
        perm = place_clusters(traffic, topo, routing)
        d = routing.distance(
            topo.node_of_crossbar(int(perm[0])),
            topo.node_of_crossbar(int(perm[3])),
        )
        assert d == 2  # siblings, not across the root (4 hops)

    def test_perm_is_permutation(self):
        topo = tree(6)
        rng = np.random.default_rng(0)
        traffic = rng.random((6, 6)) * 10
        np.fill_diagonal(traffic, 0.0)
        perm = place_clusters(traffic, topo)
        assert sorted(perm.tolist()) == list(range(6))

    def test_single_cluster(self):
        perm = place_clusters(np.zeros((1, 1)), tree(1))
        assert perm.tolist() == [0]

    def test_cost_never_worse_than_identity(self):
        topo = tree(8)
        routing = routing_for(topo)
        rng = np.random.default_rng(3)
        traffic = rng.random((8, 8)) * 50
        np.fill_diagonal(traffic, 0.0)
        from repro.core.placement import _distance_matrix
        dist = _distance_matrix(topo, routing)
        perm = place_clusters(traffic, topo, routing)
        identity = np.arange(8)
        assert placement_cost(traffic, perm, dist) <= placement_cost(
            traffic, identity, dist
        )

    def test_too_few_slots_rejected(self):
        with pytest.raises(ValueError, match="attach points"):
            place_clusters(np.zeros((5, 5)), tree(3))

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            place_clusters(np.zeros((2, 3)), tree(3))


class TestApplyPlacement:
    def test_relabeling(self):
        assignment = np.array([0, 0, 1, 2])
        perm = np.array([2, 0, 1])  # cluster 0 -> slot 2, etc.
        assert apply_placement(assignment, perm).tolist() == [2, 2, 0, 1]

    def test_fitness_invariant(self, tiny_graph):
        """Relabeling clusters never changes which synapses cross."""
        from repro.core.fitness import InterconnectFitness
        fit = InterconnectFitness(tiny_graph)
        assignment = np.array([0, 1, 0, 1, 2, 3, 2, 3])
        perm = np.array([3, 1, 0, 2])
        before = fit.evaluate(assignment)
        after = fit.evaluate(apply_placement(assignment, perm))
        assert before == after


class TestEvacuationCost:
    def test_nearest_refuge_weighted_by_load(self):
        from repro.core.placement import evacuation_cost

        topo = tree(4, arity=2)  # leaf distances: siblings 2, cousins 4
        routing = routing_for(topo)
        from repro.core.placement import _distance_matrix
        dist = _distance_matrix(topo, routing)
        loads = np.array([4, 4, 4, 2])  # only cluster 3 has free slots
        perm = np.arange(4)
        cost = evacuation_cost(loads, 4, perm, dist)
        # Clusters 0/1 sit 4 hops from the refuge, cluster 2 sits 2
        # hops; cluster 3's own refuge is itself -> contributes 0.
        assert cost == pytest.approx(4 * 4 + 4 * 4 + 4 * 2)

    def test_no_spare_capacity_is_zero(self):
        from repro.core.placement import evacuation_cost

        dist = np.ones((3, 3))
        assert evacuation_cost(
            np.array([4, 4, 4]), 4, np.arange(3), dist
        ) == 0.0

    def test_spare_placement_moves_refuge_closer(self):
        """With a heavy spare term, loaded clusters hug the empty one."""
        from repro.core.placement import _distance_matrix, evacuation_cost

        topo = tree(8, arity=2)
        routing = routing_for(topo)
        dist = _distance_matrix(topo, routing)
        rng = np.random.default_rng(5)
        traffic = rng.random((8, 8))
        np.fill_diagonal(traffic, 0.0)
        loads = np.array([4, 4, 4, 4, 4, 4, 4, 0])  # one empty cluster
        plain = place_clusters(traffic, topo, routing)
        spare = place_clusters(
            traffic, topo, routing,
            loads=loads, capacity=4, spare_weight=1000.0,
        )
        assert evacuation_cost(loads, 4, spare, dist) <= evacuation_cost(
            loads, 4, plain, dist
        )

    def test_default_path_unchanged_by_new_arguments(self):
        topo = tree(6)
        rng = np.random.default_rng(7)
        traffic = rng.random((6, 6)) * 10
        np.fill_diagonal(traffic, 0.0)
        before = place_clusters(traffic, topo)
        after = place_clusters(
            traffic, topo, loads=np.full(6, 3), capacity=4,
            spare_weight=0.0,
        )
        assert (before == after).all()

    def test_spare_weight_validation(self):
        topo = tree(3)
        traffic = np.zeros((3, 3))
        with pytest.raises(ValueError, match="non-negative"):
            place_clusters(traffic, topo, spare_weight=-1.0)
        with pytest.raises(ValueError, match="loads and capacity"):
            place_clusters(traffic, topo, spare_weight=1.0)
