"""Tests for the baseline partitioners."""

import numpy as np
import pytest

from repro.core.baselines import (
    AnnealingConfig,
    annealing_partition,
    greedy_partition,
    neutrams_partition,
    pacman_partition,
    random_partition,
)
from repro.core.fitness import InterconnectFitness
from repro.core.partition import is_feasible
from repro.snn.graph import SpikeGraph

ALL_BASELINES = [
    lambda g, c, cap: pacman_partition(g, c, cap),
    lambda g, c, cap: neutrams_partition(g, c, cap, seed=0),
    lambda g, c, cap: random_partition(g, c, cap, seed=0),
    lambda g, c, cap: greedy_partition(g, c, cap),
    lambda g, c, cap: annealing_partition(
        g, c, cap, config=AnnealingConfig(n_steps=500), seed=0
    ),
]


class TestFeasibilityAll:
    @pytest.mark.parametrize("baseline", ALL_BASELINES)
    def test_feasible_on_tiny(self, tiny_graph, baseline):
        p = baseline(tiny_graph, 2, 4)
        assert is_feasible(p.assignment, 2, 4)

    @pytest.mark.parametrize("baseline", ALL_BASELINES)
    def test_feasible_with_slack(self, tiny_graph, baseline):
        p = baseline(tiny_graph, 4, 3)
        assert is_feasible(p.assignment, 4, 3)

    @pytest.mark.parametrize("baseline", ALL_BASELINES)
    def test_impossible_rejected(self, tiny_graph, baseline):
        with pytest.raises(ValueError):
            baseline(tiny_graph, 2, 3)


class TestPacman:
    def test_layer_order_packing(self, chain_graph):
        p = pacman_partition(chain_graph, 3, 2)
        # Chain layers 0..5 pack pairwise: (0,1), (2,3), (4,5).
        assert p.assignment.tolist() == [0, 0, 1, 1, 2, 2]

    def test_traffic_blind(self, tiny_graph):
        """PACMAN ignores traffic: id-order packing splits both communities."""
        p = pacman_partition(tiny_graph, 2, 4)
        assert p.assignment.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]
        # On this graph id order happens to match community structure;
        # reversing layers must change the packing.
        g2 = SpikeGraph.from_edges(
            8, tiny_graph.src, tiny_graph.dst, tiny_graph.traffic,
            layers=[1, 1, 1, 1, 0, 0, 0, 0],
        )
        p2 = pacman_partition(g2, 2, 4)
        assert p2.assignment.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_deterministic(self, tiny_graph):
        a = pacman_partition(tiny_graph, 2, 4).assignment
        b = pacman_partition(tiny_graph, 2, 4).assignment
        assert np.array_equal(a, b)


class TestNeutrams:
    def test_cuts_few_edges_on_communities(self, tiny_graph):
        p = neutrams_partition(tiny_graph, 2, 4, seed=1)
        fit = InterconnectFitness(tiny_graph)
        # KL on the unweighted graph still finds the structural cut here
        # (the communities are also structurally separate).
        assert fit.evaluate(p.assignment) == 5.0

    def test_ignores_traffic_weights(self):
        """Same structure, different traffic -> same partition."""
        src = [0, 1, 2, 3, 0, 2]
        dst = [1, 0, 3, 2, 2, 0]
        g_light = SpikeGraph.from_edges(4, src, dst, [1.0] * 6)
        g_heavy = SpikeGraph.from_edges(4, src, dst, [99.0] * 6)
        a = neutrams_partition(g_light, 2, 2, seed=3).assignment
        b = neutrams_partition(g_heavy, 2, 2, seed=3).assignment
        assert np.array_equal(a, b)


class TestGreedy:
    def test_hottest_edges_local(self, tiny_graph):
        p = greedy_partition(tiny_graph, 2, 4)
        fit = InterconnectFitness(tiny_graph)
        assert fit.evaluate(p.assignment) == 5.0

    def test_capacity_respected_when_groups_split(self):
        # A 5-clique of heavy traffic cannot fit capacity 3: greedy must
        # split it but stay feasible.
        src, dst, tr = [], [], []
        for a in range(5):
            for b in range(5):
                if a != b:
                    src.append(a), dst.append(b), tr.append(10.0)
        g = SpikeGraph.from_edges(5, src, dst, tr)
        p = greedy_partition(g, 2, 3)
        assert is_feasible(p.assignment, 2, 3)


class TestAnnealing:
    def test_improves_over_random(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        rand = random_partition(tiny_graph, 2, 4, seed=5)
        annealed = annealing_partition(
            tiny_graph, 2, 4, config=AnnealingConfig(n_steps=3000), seed=5
        )
        assert fit.evaluate(annealed.assignment) <= fit.evaluate(rand.assignment)

    def test_finds_optimum_on_tiny(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        p = annealing_partition(
            tiny_graph, 2, 4, config=AnnealingConfig(n_steps=5000), seed=1
        )
        assert fit.evaluate(p.assignment) == 5.0

    def test_bad_config(self):
        with pytest.raises(ValueError):
            AnnealingConfig(alpha=1.5)
        with pytest.raises(ValueError):
            AnnealingConfig(n_steps=0)


class TestRandom:
    def test_seed_determinism(self, tiny_graph):
        a = random_partition(tiny_graph, 2, 4, seed=9).assignment
        b = random_partition(tiny_graph, 2, 4, seed=9).assignment
        assert np.array_equal(a, b)
