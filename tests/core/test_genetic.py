"""Tests for the genetic-algorithm partitioner."""

import numpy as np
import pytest

from repro.core.baselines.genetic import GAConfig, genetic_partition
from repro.core.fitness import InterconnectFitness
from repro.core.partition import is_feasible

FAST = GAConfig(population=20, generations=15)


class TestGeneticPartition:
    def test_feasible(self, tiny_graph):
        p = genetic_partition(tiny_graph, 2, 4, config=FAST, seed=0)
        assert is_feasible(p.assignment, 2, 4)

    def test_finds_community_structure(self, tiny_graph):
        p = genetic_partition(
            tiny_graph, 2, 4, config=GAConfig(population=40, generations=40),
            seed=1,
        )
        fit = InterconnectFitness(tiny_graph)
        assert fit.evaluate(p.assignment) == 5.0

    def test_deterministic_given_seed(self, tiny_graph):
        a = genetic_partition(tiny_graph, 2, 4, config=FAST, seed=3).assignment
        b = genetic_partition(tiny_graph, 2, 4, config=FAST, seed=3).assignment
        assert np.array_equal(a, b)

    def test_beats_random_on_structure(self, tiny_graph):
        from repro.core.baselines import random_partition
        fit = InterconnectFitness(tiny_graph)
        ga = genetic_partition(tiny_graph, 2, 4, config=FAST, seed=0)
        rnd = random_partition(tiny_graph, 2, 4, seed=0)
        assert fit.evaluate(ga.assignment) <= fit.evaluate(rnd.assignment)

    def test_packet_objective(self, tiny_graph):
        p = genetic_partition(tiny_graph, 2, 4, config=FAST, seed=0,
                              count_packets=True)
        assert is_feasible(p.assignment, 2, 4)

    def test_impossible_capacity_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="cannot fit"):
            genetic_partition(tiny_graph, 2, 3, config=FAST)

    def test_elitism_monotone(self, tiny_graph):
        """More generations can only improve the elite-preserved best."""
        fit = InterconnectFitness(tiny_graph)
        short = genetic_partition(
            tiny_graph, 2, 4, config=GAConfig(population=20, generations=2),
            seed=5,
        )
        long = genetic_partition(
            tiny_graph, 2, 4, config=GAConfig(population=20, generations=30),
            seed=5,
        )
        assert (fit.evaluate(long.assignment)
                <= fit.evaluate(short.assignment))


class TestGAConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(population=0), dict(generations=0), dict(crossover_rate=1.5),
         dict(mutation_rate=-0.1), dict(elite=100)],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)
