"""Tests for traffic aggregation (Eqs. 6-7)."""

import numpy as np
import pytest

from repro.core.traffic_matrix import (
    TrafficMatrix,
    cluster_traffic,
    local_global_split,
    synapse_split_counts,
)
from repro.snn.graph import SpikeGraph


class TestTrafficMatrix:
    def test_total(self, tiny_graph):
        m = TrafficMatrix(tiny_graph)
        assert m.total == tiny_graph.total_traffic()

    def test_parallel_synapses_merged(self):
        g = SpikeGraph.from_edges(2, [0, 0], [1, 1], [3.0, 4.0])
        m = TrafficMatrix(g)
        assert m.n_pairs == 1
        assert m.traffic[0] == 7.0

    def test_self_loops_dropped(self):
        g = SpikeGraph.from_edges(2, [0, 0], [0, 1], [5.0, 2.0])
        m = TrafficMatrix(g)
        assert m.n_pairs == 1
        assert m.total == 2.0

    def test_global_traffic_all_local(self, tiny_graph):
        m = TrafficMatrix(tiny_graph)
        assert m.global_traffic(np.zeros(8, dtype=int)) == 0.0

    def test_global_traffic_optimal_cut(self, tiny_graph):
        m = TrafficMatrix(tiny_graph)
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert m.global_traffic(a) == 5.0  # only the bridge

    def test_local_plus_global_is_total(self, tiny_graph):
        m = TrafficMatrix(tiny_graph)
        a = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        assert m.local_traffic(a) + m.global_traffic(a) == m.total

    def test_batch_matches_scalar(self, tiny_graph):
        m = TrafficMatrix(tiny_graph)
        rng = np.random.default_rng(0)
        batch = rng.integers(0, 3, size=(16, 8))
        batched = m.global_traffic_batch(batch)
        scalar = np.array([m.global_traffic(row) for row in batch])
        assert np.allclose(batched, scalar)

    def test_batch_1d_input(self, tiny_graph):
        m = TrafficMatrix(tiny_graph)
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert m.global_traffic_batch(a)[0] == 5.0

    def test_batch_wrong_width_rejected(self, tiny_graph):
        m = TrafficMatrix(tiny_graph)
        with pytest.raises(ValueError):
            m.global_traffic_batch(np.zeros((4, 5), dtype=int))


class TestClusterTraffic:
    def test_eq7_matrix(self, tiny_graph):
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        matrix = cluster_traffic(tiny_graph, a, 2)
        assert matrix[0, 1] == 5.0   # the bridge 3 -> 4
        assert matrix[1, 0] == 0.0
        assert matrix[0, 0] == 0.0   # Eq. 7: zero diagonal
        assert matrix[1, 1] == 0.0

    def test_matrix_sum_equals_global_traffic(self, tiny_graph):
        a = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        matrix = cluster_traffic(tiny_graph, a, 2)
        m = TrafficMatrix(tiny_graph)
        assert matrix.sum() == m.global_traffic(a)

    def test_n_clusters_inferred(self, tiny_graph):
        a = np.array([0, 0, 0, 0, 2, 2, 2, 2])
        matrix = cluster_traffic(tiny_graph, a)
        assert matrix.shape == (3, 3)

    def test_wrong_length_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            cluster_traffic(tiny_graph, np.zeros(3, dtype=int))


class TestSplits:
    def test_local_global_split(self, tiny_graph):
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        local, global_ = local_global_split(tiny_graph, a)
        assert global_ == 5.0
        assert local == tiny_graph.total_traffic() - 5.0

    def test_synapse_split_counts(self, tiny_graph):
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        local, global_ = synapse_split_counts(tiny_graph, a)
        assert global_ == 1
        assert local == tiny_graph.n_synapses - 1
