"""Tests for the high-level mapping entry point."""

import pytest

from repro.core.mapper import METHODS, compare_methods, map_snn
from repro.core.partition import is_feasible
from repro.core.pso import PSOConfig


class TestMapSnn:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_method_returns_feasible(self, tiny_graph, two_cluster_arch,
                                           method):
        kwargs = {}
        if method == "pso":
            kwargs["pso_config"] = PSOConfig(n_particles=10, n_iterations=5)
        result = map_snn(tiny_graph, two_cluster_arch, method=method, seed=0,
                         **kwargs)
        assert is_feasible(result.assignment, 2, 4)
        assert result.method == method

    def test_spike_accounting_consistent(self, tiny_graph, two_cluster_arch):
        result = map_snn(tiny_graph, two_cluster_arch, method="pacman")
        assert result.local_spikes + result.global_spikes == pytest.approx(
            tiny_graph.total_traffic()
        )
        assert result.fitness == result.global_spikes

    def test_synapse_accounting_consistent(self, tiny_graph, two_cluster_arch):
        result = map_snn(tiny_graph, two_cluster_arch, method="random", seed=1)
        assert (result.local_synapses + result.global_synapses
                == tiny_graph.n_synapses)

    def test_pso_records_history(self, tiny_graph, two_cluster_arch):
        result = map_snn(
            tiny_graph, two_cluster_arch, method="pso", seed=0,
            pso_config=PSOConfig(n_particles=10, n_iterations=5),
        )
        assert "history" in result.extras
        assert result.extras["n_evaluations"] == 50

    def test_warm_start_never_worse_than_pacman(self, tiny_graph,
                                                two_cluster_arch):
        pacman = map_snn(tiny_graph, two_cluster_arch, method="pacman")
        pso = map_snn(
            tiny_graph, two_cluster_arch, method="pso", seed=0,
            pso_config=PSOConfig(n_particles=10, n_iterations=5),
        )
        assert pso.fitness <= pacman.fitness

    def test_unknown_method_rejected(self, tiny_graph, two_cluster_arch):
        with pytest.raises(ValueError, match="unknown method"):
            map_snn(tiny_graph, two_cluster_arch, method="magic")

    def test_architecture_too_small_rejected(self, tiny_graph, small_arch):
        from repro.hardware.presets import custom
        cramped = custom(n_crossbars=1, neurons_per_crossbar=4)
        with pytest.raises(ValueError, match="exceeds"):
            map_snn(tiny_graph, cramped, method="pacman")

    def test_global_fraction(self, tiny_graph, two_cluster_arch):
        result = map_snn(tiny_graph, two_cluster_arch, method="pacman")
        assert 0.0 <= result.global_fraction <= 1.0

    def test_describe(self, tiny_graph, two_cluster_arch):
        result = map_snn(tiny_graph, two_cluster_arch, method="greedy")
        assert "greedy" in result.describe()


class TestCompareMethods:
    def test_all_requested_present(self, tiny_graph, two_cluster_arch):
        results = compare_methods(
            tiny_graph, two_cluster_arch,
            methods=("random", "pacman", "pso"), seed=0,
            pso_config=PSOConfig(n_particles=10, n_iterations=10),
        )
        assert set(results) == {"random", "pacman", "pso"}

    def test_pso_wins_on_structured_graph(self, tiny_graph, two_cluster_arch):
        results = compare_methods(
            tiny_graph, two_cluster_arch,
            methods=("random", "pso"), seed=0,
            pso_config=PSOConfig(n_particles=20, n_iterations=20),
        )
        assert results["pso"].fitness <= results["random"].fitness
