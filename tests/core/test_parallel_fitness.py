"""Sharded NoC-in-the-loop fitness through the swarm stack.

``InterconnectFitness(noc_in_loop=True, workers=N)`` must hand
``BinaryPSO`` the same fitness vectors as the serial path — which makes
whole swarm runs (same seed) land on the same optimum, iteration by
iteration — and ``map_snn(objective="noc")`` must carry the option end
to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitness import InterconnectFitness
from repro.core.mapper import map_snn
from repro.core.pso import BinaryPSO, PSOConfig
from repro.noc.topology import tree


def _noc_fitness(graph, **kwargs):
    return InterconnectFitness(graph, noc_in_loop=True, topology=tree(2), **kwargs)


class TestBatchDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fitness_vectors_identical(self, tiny_graph, workers):
        batch = np.random.default_rng(7).integers(0, 2, size=(12, 8))
        with _noc_fitness(tiny_graph) as serial:
            expected = serial.evaluate_batch(batch)
        with _noc_fitness(tiny_graph, workers=workers) as sharded:
            np.testing.assert_array_equal(sharded.evaluate_batch(batch), expected)

    def test_latency_metric_identical(self, tiny_graph):
        batch = np.random.default_rng(8).integers(0, 2, size=(8, 8))
        with _noc_fitness(tiny_graph, noc_metric="latency") as serial:
            expected = serial.evaluate_batch(batch)
        with _noc_fitness(tiny_graph, noc_metric="latency", workers=2) as sharded:
            np.testing.assert_array_equal(sharded.evaluate_batch(batch), expected)

    def test_single_evaluate_agrees_with_batch(self, tiny_graph):
        batch = np.random.default_rng(9).integers(0, 2, size=(4, 8))
        with _noc_fitness(tiny_graph, workers=2) as fit:
            values = fit.evaluate_batch(batch)
            for row, value in zip(batch, values):
                assert fit.evaluate(row) == value


class TestSwarmDeterminism:
    def _run(self, graph, workers):
        config = PSOConfig(n_particles=6, n_iterations=4)
        with _noc_fitness(graph, workers=workers) as fitness:
            pso = BinaryPSO(
                fitness, n_neurons=8, n_clusters=2, capacity=8, config=config, seed=123
            )
            return pso.optimize()

    def test_whole_swarm_run_identical(self, tiny_graph):
        serial = self._run(tiny_graph, workers=1)
        sharded = self._run(tiny_graph, workers=2)
        assert serial.best_fitness == sharded.best_fitness
        np.testing.assert_array_equal(serial.history, sharded.history)
        np.testing.assert_array_equal(serial.best_assignment, sharded.best_assignment)


class TestMapSnnNocObjective:
    def _arch(self):
        from repro.hardware.presets import custom

        return custom(2, 8, interconnect="tree", name="noc-objective")

    def test_noc_objective_runs_and_matches_serial(self, tiny_graph):
        config = PSOConfig(n_particles=4, n_iterations=2)
        kwargs = dict(method="pso", seed=5, pso_config=config, objective="noc")
        serial = map_snn(tiny_graph, self._arch(), workers=1, **kwargs)
        sharded = map_snn(tiny_graph, self._arch(), workers=2, **kwargs)
        np.testing.assert_array_equal(serial.assignment, sharded.assignment)
        np.testing.assert_array_equal(
            serial.extras["history"], sharded.extras["history"]
        )

    def test_unknown_objective_still_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="objective"):
            map_snn(tiny_graph, self._arch(), objective="vibes")

    def test_noc_objective_rejected_for_structural_methods(self, tiny_graph):
        """Baselines cannot honor 'noc'; mislabeling them would be worse."""
        with pytest.raises(ValueError, match="only supported by method='pso'"):
            map_snn(tiny_graph, self._arch(), method="greedy", objective="noc")

    def test_compare_methods_rejects_mixed_noc(self, tiny_graph):
        from repro.core.mapper import compare_methods

        with pytest.raises(ValueError, match="only supported by method='pso'"):
            compare_methods(
                tiny_graph, self._arch(), methods=("greedy", "pso"), objective="noc"
            )

    def test_noc_config_forwarded_to_fitness(self, tiny_graph, monkeypatch):
        """The swarm must optimize the fabric the mapping is measured on."""
        from repro.core import mapper
        from repro.noc.interconnect import NocConfig

        captured = {}
        original = mapper.InterconnectFitness

        class Spy(original):
            def __init__(self, *args, **kwargs):
                captured.update(kwargs)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(mapper, "InterconnectFitness", Spy)
        cfg = NocConfig(multicast=False, buffer_capacity=2)
        map_snn(
            tiny_graph,
            self._arch(),
            method="pso",
            seed=5,
            pso_config=PSOConfig(n_particles=4, n_iterations=2),
            objective="noc",
            noc_config=cfg,
        )
        assert captured["noc_config"] is cfg

    def test_closed_form_objectives_ignore_workers(self, tiny_graph):
        result = map_snn(
            tiny_graph,
            self._arch(),
            method="pso",
            seed=5,
            pso_config=PSOConfig(n_particles=4, n_iterations=2),
            objective="packets",
            workers=4,
        )
        assert result.partition.assignment.shape == (8,)
