"""Tests for fitness functions (Eq. 8 and variants)."""

import numpy as np
import pytest

from repro.core.fitness import InterconnectFitness
from repro.noc.routing import routing_for
from repro.noc.topology import tree
from repro.snn.graph import SpikeGraph


class TestDefaultFitness:
    def test_matches_bruteforce(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(0, 2, size=8)
            brute = sum(
                t for s, d, t in zip(tiny_graph.src, tiny_graph.dst,
                                     tiny_graph.traffic)
                if a[s] != a[d]
            )
            assert fit.evaluate(a) == pytest.approx(brute)

    def test_upper_bound(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        assert fit.upper_bound == tiny_graph.total_traffic()

    def test_batch_agrees_with_single(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        rng = np.random.default_rng(2)
        batch = rng.integers(0, 2, size=(8, 8))
        values = fit.evaluate_batch(batch)
        for row, v in zip(batch, values):
            assert fit.evaluate(row) == pytest.approx(v)

    def test_perfect_partition_zero(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        assert fit.evaluate(np.zeros(8, dtype=int)) == 0.0


class TestPacketCountVariant:
    def test_multicast_counts_once_per_cluster(self):
        # Neuron 0 (10 spikes) feeds neurons 1 and 2 on the same remote
        # cluster: per-synapse fitness counts 20, packet fitness counts 10.
        spike_times = [np.linspace(0, 9, 10), np.empty(0), np.empty(0)]
        g = SpikeGraph.from_edges(
            3, [0, 0], [1, 2], [10.0, 10.0], spike_times=spike_times
        )
        a = np.array([0, 1, 1])
        per_synapse = InterconnectFitness(g)
        per_packet = InterconnectFitness(g, count_packets=True)
        assert per_synapse.evaluate(a) == 20.0
        assert per_packet.evaluate(a) == 10.0

    def test_two_remote_clusters_two_packets(self):
        spike_times = [np.linspace(0, 9, 10), np.empty(0), np.empty(0)]
        g = SpikeGraph.from_edges(
            3, [0, 0], [1, 2], [10.0, 10.0], spike_times=spike_times
        )
        a = np.array([0, 1, 2])
        per_packet = InterconnectFitness(g, count_packets=True)
        assert per_packet.evaluate(a) == 20.0

    def test_all_local_zero(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph, count_packets=True)
        assert fit.evaluate(np.zeros(8, dtype=int)) == 0.0


class TestHopWeightedVariant:
    def test_requires_topology(self, tiny_graph):
        with pytest.raises(ValueError, match="topology"):
            InterconnectFitness(tiny_graph, hop_weighted=True)

    def test_distance_scales_cost(self, tiny_graph):
        topo = tree(4, arity=2)  # leaves 0,1 near; 0,3 far
        routing = routing_for(topo)
        fit = InterconnectFitness(
            tiny_graph, hop_weighted=True, topology=topo, routing=routing
        )
        near = np.array([0, 0, 0, 0, 1, 1, 1, 1])  # bridge spans 2 hops
        far = np.array([0, 0, 0, 0, 3, 3, 3, 3])   # bridge spans 4 hops
        assert fit.evaluate(far) > fit.evaluate(near)

    def test_batch_fallback_matches(self, tiny_graph):
        topo = tree(4)
        fit = InterconnectFitness(
            tiny_graph, hop_weighted=True, topology=topo,
            routing=routing_for(topo),
        )
        batch = np.array([[0, 0, 0, 0, 1, 1, 1, 1],
                          [0, 0, 0, 0, 3, 3, 3, 3]])
        values = fit.evaluate_batch(batch)
        assert values[0] == fit.evaluate(batch[0])
        assert values[1] == fit.evaluate(batch[1])
