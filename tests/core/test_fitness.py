"""Tests for fitness functions (Eq. 8 and variants)."""

import numpy as np
import pytest

from repro.core.fitness import UNDELIVERED_PENALTY, InterconnectFitness
from repro.core.traffic_matrix import cluster_traffic
from repro.noc.interconnect import NocConfig
from repro.noc.routing import routing_for
from repro.noc.topology import tree
from repro.snn.graph import SpikeGraph


class TestDefaultFitness:
    def test_matches_bruteforce(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(0, 2, size=8)
            brute = sum(
                t for s, d, t in zip(tiny_graph.src, tiny_graph.dst,
                                     tiny_graph.traffic)
                if a[s] != a[d]
            )
            assert fit.evaluate(a) == pytest.approx(brute)

    def test_upper_bound(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        assert fit.upper_bound == tiny_graph.total_traffic()

    def test_batch_agrees_with_single(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        rng = np.random.default_rng(2)
        batch = rng.integers(0, 2, size=(8, 8))
        values = fit.evaluate_batch(batch)
        for row, v in zip(batch, values):
            assert fit.evaluate(row) == pytest.approx(v)

    def test_perfect_partition_zero(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph)
        assert fit.evaluate(np.zeros(8, dtype=int)) == 0.0


class TestPacketCountVariant:
    def test_multicast_counts_once_per_cluster(self):
        # Neuron 0 (10 spikes) feeds neurons 1 and 2 on the same remote
        # cluster: per-synapse fitness counts 20, packet fitness counts 10.
        spike_times = [np.linspace(0, 9, 10), np.empty(0), np.empty(0)]
        g = SpikeGraph.from_edges(
            3, [0, 0], [1, 2], [10.0, 10.0], spike_times=spike_times
        )
        a = np.array([0, 1, 1])
        per_synapse = InterconnectFitness(g)
        per_packet = InterconnectFitness(g, count_packets=True)
        assert per_synapse.evaluate(a) == 20.0
        assert per_packet.evaluate(a) == 10.0

    def test_two_remote_clusters_two_packets(self):
        spike_times = [np.linspace(0, 9, 10), np.empty(0), np.empty(0)]
        g = SpikeGraph.from_edges(
            3, [0, 0], [1, 2], [10.0, 10.0], spike_times=spike_times
        )
        a = np.array([0, 1, 2])
        per_packet = InterconnectFitness(g, count_packets=True)
        assert per_packet.evaluate(a) == 20.0

    def test_all_local_zero(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph, count_packets=True)
        assert fit.evaluate(np.zeros(8, dtype=int)) == 0.0


class TestHopWeightedVariant:
    def test_requires_topology(self, tiny_graph):
        with pytest.raises(ValueError, match="topology"):
            InterconnectFitness(tiny_graph, hop_weighted=True)

    def test_distance_scales_cost(self, tiny_graph):
        topo = tree(4, arity=2)  # leaves 0,1 near; 0,3 far
        routing = routing_for(topo)
        fit = InterconnectFitness(
            tiny_graph, hop_weighted=True, topology=topo, routing=routing
        )
        near = np.array([0, 0, 0, 0, 1, 1, 1, 1])  # bridge spans 2 hops
        far = np.array([0, 0, 0, 0, 3, 3, 3, 3])   # bridge spans 4 hops
        assert fit.evaluate(far) > fit.evaluate(near)

    def test_batch_fallback_matches(self, tiny_graph):
        topo = tree(4)
        fit = InterconnectFitness(
            tiny_graph, hop_weighted=True, topology=topo,
            routing=routing_for(topo),
        )
        batch = np.array([[0, 0, 0, 0, 1, 1, 1, 1],
                          [0, 0, 0, 0, 3, 3, 3, 3]])
        values = fit.evaluate_batch(batch)
        assert values[0] == fit.evaluate(batch[0])
        assert values[1] == fit.evaluate(batch[1])

    def test_matches_cluster_traffic_bruteforce(self, tiny_graph):
        """The vectorized gather equals the Eq. 7 double sum."""
        topo = tree(4)
        routing = routing_for(topo)
        fit = InterconnectFitness(
            tiny_graph, hop_weighted=True, topology=topo, routing=routing
        )
        rng = np.random.default_rng(5)
        for _ in range(10):
            a = rng.integers(0, 4, size=8)
            matrix = cluster_traffic(tiny_graph, a, topo.n_attach_points)
            brute = sum(
                matrix[k1, k2] * routing.distance(
                    topo.node_of_crossbar(k1), topo.node_of_crossbar(k2)
                )
                for k1 in range(4)
                for k2 in range(4)
                if k1 != k2 and matrix[k1, k2]
            )
            assert fit.evaluate(a) == pytest.approx(brute)

    def test_trailing_empty_clusters_consistent(self, tiny_graph):
        """Assignments leaving trailing crossbars empty score the same
        whether they appear in a batch with full assignments or alone.

        Regression: n_clusters used to be derived from
        ``assignment.max() + 1``, desyncing the hop matrix from the
        topology's crossbar count when trailing clusters were empty.
        """
        topo = tree(4)
        fit = InterconnectFitness(
            tiny_graph, hop_weighted=True, topology=topo,
            routing=routing_for(topo),
        )
        uses_two = np.array([0, 0, 0, 0, 1, 1, 1, 1])   # crossbars 2,3 empty
        uses_all = np.array([0, 1, 2, 3, 0, 1, 2, 3])
        batch = np.vstack([uses_two, uses_all])
        values = fit.evaluate_batch(batch)
        assert values[0] == pytest.approx(fit.evaluate(uses_two))
        assert values[1] == pytest.approx(fit.evaluate(uses_all))

    def test_cluster_beyond_attach_points_rejected(self, tiny_graph):
        topo = tree(4)
        fit = InterconnectFitness(
            tiny_graph, hop_weighted=True, topology=topo,
            routing=routing_for(topo),
        )
        with pytest.raises(ValueError, match="attach points"):
            fit.evaluate(np.array([0, 0, 0, 0, 9, 9, 9, 9]))

    def test_batch_is_vectorized_not_row_by_row(self, tiny_graph):
        """The batch path must not fall back to per-row evaluate."""
        topo = tree(4)
        fit = InterconnectFitness(
            tiny_graph, hop_weighted=True, topology=topo,
            routing=routing_for(topo),
        )
        calls = []
        original = fit._hop_weighted

        def traced(a):
            calls.append(1)
            return original(a)

        fit._hop_weighted = traced
        batch = np.random.default_rng(0).integers(0, 4, size=(16, 8))
        fit.evaluate_batch(batch)
        assert calls == []


class TestNocInLoopVariant:
    def _fit(self, graph, **kwargs):
        topo = tree(2)
        return InterconnectFitness(
            graph, noc_in_loop=True, topology=topo, **kwargs
        )

    def test_requires_topology(self, tiny_graph):
        with pytest.raises(ValueError, match="topology"):
            InterconnectFitness(tiny_graph, noc_in_loop=True)

    def test_unknown_metric_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="noc_metric"):
            self._fit(tiny_graph, noc_metric="vibes")

    def test_all_local_scores_zero(self, tiny_graph):
        fit = self._fit(tiny_graph)
        assert fit.evaluate(np.zeros(8, dtype=int)) == 0.0

    def test_good_partition_beats_bad(self, tiny_graph):
        """The simulated objective prefers the community cut."""
        fit = self._fit(tiny_graph)
        good = np.array([0, 0, 0, 0, 1, 1, 1, 1])  # only the bridge crosses
        bad = np.array([0, 1, 0, 1, 0, 1, 0, 1])   # everything crosses
        assert fit.evaluate(good) < fit.evaluate(bad)

    def test_batch_matches_single(self, tiny_graph):
        fit = self._fit(tiny_graph)
        batch = np.array([[0, 0, 0, 0, 1, 1, 1, 1],
                          [0, 1, 0, 1, 0, 1, 0, 1],
                          [0, 0, 0, 0, 0, 0, 0, 0]])
        values = fit.evaluate_batch(batch)
        for row, v in zip(batch, values):
            assert fit.evaluate(row) == pytest.approx(v)

    def test_latency_metric(self, tiny_graph):
        fit = self._fit(tiny_graph, noc_metric="latency")
        good = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        value = fit.evaluate(good)
        assert 0.0 < value < UNDELIVERED_PENALTY

    def test_undelivered_penalized(self, tiny_graph):
        """A drain budget too small to deliver must dominate the score."""
        fit = self._fit(
            tiny_graph, noc_config=NocConfig(max_extra_cycles=1)
        )
        bad = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        assert fit.evaluate(bad) >= UNDELIVERED_PENALTY

    def test_drives_pso(self, tiny_graph):
        """BinaryPSO accepts the NoC-in-the-loop objective end to end."""
        from repro.core.pso import BinaryPSO, PSOConfig

        fit = self._fit(tiny_graph)
        result = BinaryPSO(
            fit, n_neurons=8, n_clusters=2, capacity=4,
            config=PSOConfig(n_particles=6, n_iterations=4), seed=3,
        ).optimize()
        assert result.best_fitness < UNDELIVERED_PENALTY
        assert result.n_evaluations == 24


class TestBalancePenalty:
    """Fault-aware spreading: over-watermark cluster fill is penalized."""

    def test_penalty_matches_bruteforce(self, tiny_graph):
        fit = InterconnectFitness(
            tiny_graph, balance_watermark=3, balance_weight=2.0
        )
        plain = InterconnectFitness(tiny_graph)
        rng = np.random.default_rng(4)
        for _ in range(10):
            a = rng.integers(0, 3, size=8)
            counts = np.bincount(a, minlength=3)
            overflow = np.clip(counts - 3, 0, None)
            expected = plain.evaluate(a) + 2.0 * float(
                (overflow.astype(float) ** 2).sum()
            )
            assert fit.evaluate(a) == pytest.approx(expected)

    def test_batch_agrees_with_single(self, tiny_graph):
        fit = InterconnectFitness(
            tiny_graph, balance_watermark=3, balance_weight=1.5
        )
        rng = np.random.default_rng(5)
        batch = rng.integers(0, 3, size=(6, 8))
        values = fit.evaluate_batch(batch)
        for row, v in zip(batch, values):
            assert fit.evaluate(row) == pytest.approx(v)

    def test_balanced_assignment_unpenalized(self, tiny_graph):
        fit = InterconnectFitness(
            tiny_graph, balance_watermark=4, balance_weight=10.0
        )
        plain = InterconnectFitness(tiny_graph)
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert fit.evaluate(a) == pytest.approx(plain.evaluate(a))

    def test_zero_weight_is_default(self, tiny_graph):
        fit = InterconnectFitness(tiny_graph, balance_weight=0.0)
        plain = InterconnectFitness(tiny_graph)
        rng = np.random.default_rng(6)
        a = rng.integers(0, 2, size=8)
        assert fit.evaluate(a) == plain.evaluate(a)

    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError, match="balance_weight"):
            InterconnectFitness(tiny_graph, balance_weight=-1.0)
        with pytest.raises(ValueError, match="watermark"):
            InterconnectFitness(tiny_graph, balance_weight=1.0)
        with pytest.raises(ValueError, match="watermark"):
            InterconnectFitness(
                tiny_graph, balance_weight=1.0, balance_watermark=0
            )
