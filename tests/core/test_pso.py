"""Tests for the binary PSO optimizer."""

import hashlib

import numpy as np
import pytest

from repro.core.fitness import InterconnectFitness
from repro.core.partition import is_feasible
from repro.core.pso import BinaryPSO, PSOConfig


def _digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


def _pso(graph, n_clusters=2, capacity=4, **cfg_kwargs):
    defaults = dict(n_particles=30, n_iterations=30)
    defaults.update(cfg_kwargs)
    return BinaryPSO(
        InterconnectFitness(graph),
        n_neurons=graph.n_neurons,
        n_clusters=n_clusters,
        capacity=capacity,
        config=PSOConfig(**defaults),
        seed=7,
    )


class TestOptimization:
    def test_finds_community_structure(self, tiny_graph):
        """On the two-community graph PSO must find the bridge cut."""
        result = _pso(tiny_graph).optimize()
        assert result.best_fitness == 5.0  # only the weak bridge crosses

    def test_solution_feasible(self, tiny_graph):
        result = _pso(tiny_graph, n_clusters=3, capacity=3).optimize()
        assert is_feasible(result.best_assignment, 3, 3)

    def test_history_monotone_nonincreasing(self, tiny_graph):
        result = _pso(tiny_graph).optimize()
        assert (np.diff(result.history) <= 0).all()

    def test_history_length(self, tiny_graph):
        result = _pso(tiny_graph, n_iterations=12).optimize()
        assert result.n_iterations_run == 12
        assert result.history.shape == (12,)

    def test_more_particles_no_worse(self, tiny_graph):
        small = _pso(tiny_graph, n_particles=2, n_iterations=10).optimize()
        large = _pso(tiny_graph, n_particles=60, n_iterations=10).optimize()
        assert large.best_fitness <= small.best_fitness

    def test_deterministic_given_seed(self, tiny_graph):
        r1 = _pso(tiny_graph).optimize()
        r2 = _pso(tiny_graph).optimize()
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best_assignment, r2.best_assignment)

    def test_full_result_deterministic_given_seed(self, tiny_graph):
        """Same seed → the same PSOResult twice, field for field.

        Regression test for the repair RNG fix: repair used to draw
        from the shared swarm stream, so *which* particles needed
        repair changed how much randomness later particles saw.  The
        whole trajectory — not just the final best — must now repeat.
        """
        r1 = _pso(tiny_graph, n_particles=12, n_iterations=15).optimize()
        r2 = _pso(tiny_graph, n_particles=12, n_iterations=15).optimize()
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best_assignment, r2.best_assignment)
        assert np.array_equal(r1.history, r2.history)
        assert r1.n_iterations_run == r2.n_iterations_run
        assert r1.n_evaluations == r2.n_evaluations

    def test_evaluation_count(self, tiny_graph):
        result = _pso(tiny_graph, n_particles=10, n_iterations=5).optimize()
        assert result.n_evaluations == 50


class TestWarmStart:
    def test_initial_assignment_bounds_result(self, tiny_graph):
        optimal = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        pso = _pso(tiny_graph, n_particles=5, n_iterations=3)
        result = pso.optimize(initial_assignments=optimal[None, :])
        assert result.best_fitness <= 5.0

    def test_1d_initial_accepted(self, tiny_graph):
        pso = _pso(tiny_graph, n_particles=5, n_iterations=3)
        result = pso.optimize(
            initial_assignments=np.array([0, 0, 0, 0, 1, 1, 1, 1])
        )
        assert result.best_fitness <= 5.0


class TestRepairIndependence:
    def test_repair_of_one_particle_cannot_couple_others(self, tiny_graph):
        """Whether particle 0 needs repair must not change particle 1's.

        Two identical optimizers repair two batches that differ only in
        particle 0 (feasible vs infeasible); every other particle's
        repaired row must come out identical.
        """
        def fresh():
            return BinaryPSO(
                InterconnectFitness(tiny_graph),
                n_neurons=8, n_clusters=2, capacity=4,
                config=PSOConfig(n_particles=4, n_iterations=1),
                seed=123,
            )

        feasible_row = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        overfull_row = np.array([0, 0, 0, 0, 0, 0, 0, 0])
        rest = np.array([
            [0, 0, 0, 1, 1, 0, 0, 0],   # overfull: needs repair
            [1, 1, 1, 1, 1, 0, 0, 1],   # overfull: needs repair
        ])
        batch_a = np.vstack([feasible_row, rest]).astype(np.int64)
        batch_b = np.vstack([overfull_row, rest]).astype(np.int64)

        repaired_a = fresh()._repair_batch(batch_a.copy())
        repaired_b = fresh()._repair_batch(batch_b.copy())
        assert np.array_equal(repaired_a[1:], repaired_b[1:])


class TestPinnedDeterminism:
    """optimize() must reproduce the pre-refactor trajectories exactly.

    The hashes below were captured from the original (pre-vectorization,
    pre-buffer-reuse) implementation: per-particle repair loop, repeat/tile
    one-hot, out-of-place velocity update.  The batched/in-place rewrite
    must hit the same best assignments, fitness values and full history,
    bit for bit, for every seed/binarization/repair-path combination.
    """

    # (seed, binarization, with_move_cost) -> (best digest, best fitness,
    #                                          history digest)
    PINNED = {
        (0, "stochastic", True): ("6bb60a1095bd987c", 1.0, "c7a425b205a6bde4"),
        (0, "stochastic", False): ("caf4e136368dceeb", 3.0, "31ecdfaa2fe436af"),
        (0, "argmax", True): ("3d80ec5ff537859f", 1.0, "f23a37197b97f182"),
        (0, "argmax", False): ("93f4acd365ea68be", 7.0, "72c0e9a257ec4782"),
        (7, "stochastic", True): ("bd77e4586edec16a", 0.0, "2ea193d3464c0840"),
        (7, "stochastic", False): ("a513d57d5ad85b27", 2.0, "ebab783b52358843"),
        (7, "argmax", True): ("c23e53a57de4208a", 1.0, "460aae4a3461e553"),
        (7, "argmax", False): ("926eb596d5a36f9e", 4.0, "723320210e356af8"),
    }

    @staticmethod
    def _run(seed, binarization, with_cost):
        n, c, cap = 60, 6, 12
        cost = np.random.default_rng(123).uniform(0, 5, n) if with_cost else None

        def fitness(batch):
            return (batch * np.arange(1, n + 1)).sum(axis=1).astype(float) % 977

        pso = BinaryPSO(
            fitness, n_neurons=n, n_clusters=c, capacity=cap,
            config=PSOConfig(
                n_particles=30, n_iterations=12, binarization=binarization
            ),
            move_cost=cost, seed=seed,
        )
        return pso.optimize()

    @pytest.mark.parametrize("key", sorted(PINNED, key=str))
    def test_matches_pre_refactor_seeds(self, key):
        expected = self.PINNED[key]
        result = self._run(*key)
        assert _digest(result.best_assignment) == expected[0]
        assert result.best_fitness == expected[1]
        assert _digest(result.history) == expected[2]

    def test_warm_start_matches_pre_refactor_seeds(self):
        n, c, cap = 50, 5, 12
        cost = np.random.default_rng(5).uniform(0, 3, n)

        def fitness(batch):
            return np.abs(np.diff(batch, axis=1)).sum(axis=1).astype(float)

        pinned = {0: ("206c696f2fc30a0a", 45.0), 7: ("577589b1aec0f7f5", 47.0)}
        for seed, (digest, best) in pinned.items():
            pso = BinaryPSO(
                fitness, n_neurons=n, n_clusters=c, capacity=cap,
                config=PSOConfig(n_particles=20, n_iterations=10),
                move_cost=cost, seed=seed,
            )
            seeds = np.stack([np.arange(n) % c, (np.arange(n) * 3) % c])
            result = pso.optimize(initial_assignments=seeds)
            assert _digest(result.best_assignment) == digest
            assert result.best_fitness == best

    def test_early_stop_matches_pre_refactor_seeds(self):
        def fitness(batch):
            return np.full(batch.shape[0], 5.0)

        pso = BinaryPSO(
            fitness, n_neurons=40, n_clusters=4, capacity=12,
            config=PSOConfig(
                n_particles=16, n_iterations=30, early_stop_patience=3
            ),
            seed=3,
        )
        result = pso.optimize()
        assert result.n_iterations_run == 4
        assert _digest(result.best_assignment) == "c86f14ecabd7cede"


class TestOneHot:
    def test_put_along_axis_matches_legacy_build(self, tiny_graph):
        pso = _pso(tiny_graph, n_particles=6)
        assignments = np.random.default_rng(0).integers(0, 2, size=(6, 8))
        onehot = pso._one_hot(assignments)
        # Legacy construction: {0,1} -> {-x_max/2, +x_max/2}.
        legacy = np.zeros((6, 8, 2))
        idx_p = np.repeat(np.arange(6), 8)
        idx_n = np.tile(np.arange(8), 6)
        legacy[idx_p, idx_n, assignments.ravel()] = 1.0
        legacy = (legacy * 2.0 - 1.0) * (pso.config.x_max / 2.0)
        assert np.array_equal(onehot, legacy)

    def test_buffer_reused_across_calls(self, tiny_graph):
        pso = _pso(tiny_graph, n_particles=6)
        a = np.zeros((6, 8), dtype=np.int64)
        first = pso._one_hot(a)
        second = pso._one_hot(a)
        assert first is second  # same reusable buffer

    def test_callers_copy_what_they_keep(self, tiny_graph):
        """gbest/pbest snapshots must survive the buffer being rewritten."""
        result = _pso(tiny_graph, n_particles=8, n_iterations=6).optimize()
        assert is_feasible(result.best_assignment, 2, 4)


class TestFloat32Swarm:
    def test_float32_runs_and_is_feasible(self, tiny_graph):
        pso = _pso(tiny_graph, n_particles=12, n_iterations=8,
                   dtype=np.float32)
        result = pso.optimize()
        assert is_feasible(result.best_assignment, 2, 4)
        assert result.best_assignment.dtype == np.int64

    def test_float32_deterministic(self, tiny_graph):
        r1 = _pso(tiny_graph, dtype=np.float32, n_iterations=8).optimize()
        r2 = _pso(tiny_graph, dtype=np.float32, n_iterations=8).optimize()
        assert np.array_equal(r1.best_assignment, r2.best_assignment)
        assert np.array_equal(r1.history, r2.history)

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            PSOConfig(dtype=np.int32)


class TestBinarizationModes:
    @pytest.mark.parametrize("mode", ["stochastic", "argmax"])
    def test_both_modes_feasible(self, tiny_graph, mode):
        result = _pso(tiny_graph, binarization=mode).optimize()
        assert is_feasible(result.best_assignment, 2, 4)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="binarization"):
            PSOConfig(binarization="quantum")


class TestEarlyStop:
    def test_patience_stops_early(self, tiny_graph):
        result = _pso(
            tiny_graph, n_iterations=100, early_stop_patience=3
        ).optimize()
        assert result.n_iterations_run < 100

    def test_bad_patience_rejected(self):
        with pytest.raises(ValueError):
            PSOConfig(early_stop_patience=0)


class TestProblemValidation:
    def test_impossible_capacity_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="cannot fit"):
            BinaryPSO(
                InterconnectFitness(tiny_graph),
                n_neurons=8, n_clusters=2, capacity=3,
            )

    def test_callable_fitness_accepted(self, tiny_graph):
        calls = []

        def fitness(batch):
            calls.append(batch.shape)
            return np.zeros(batch.shape[0])

        pso = BinaryPSO(fitness, n_neurons=8, n_clusters=2, capacity=4,
                        config=PSOConfig(n_particles=4, n_iterations=2),
                        seed=0)
        pso.optimize()
        assert calls and all(shape == (4, 8) for shape in calls)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(n_particles=0), dict(n_iterations=0), dict(v_max=0.0),
         dict(inertia=-0.1)],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PSOConfig(**kwargs)
