"""Tests for the binary PSO optimizer."""

import numpy as np
import pytest

from repro.core.fitness import InterconnectFitness
from repro.core.partition import is_feasible
from repro.core.pso import BinaryPSO, PSOConfig


def _pso(graph, n_clusters=2, capacity=4, **cfg_kwargs):
    defaults = dict(n_particles=30, n_iterations=30)
    defaults.update(cfg_kwargs)
    return BinaryPSO(
        InterconnectFitness(graph),
        n_neurons=graph.n_neurons,
        n_clusters=n_clusters,
        capacity=capacity,
        config=PSOConfig(**defaults),
        seed=7,
    )


class TestOptimization:
    def test_finds_community_structure(self, tiny_graph):
        """On the two-community graph PSO must find the bridge cut."""
        result = _pso(tiny_graph).optimize()
        assert result.best_fitness == 5.0  # only the weak bridge crosses

    def test_solution_feasible(self, tiny_graph):
        result = _pso(tiny_graph, n_clusters=3, capacity=3).optimize()
        assert is_feasible(result.best_assignment, 3, 3)

    def test_history_monotone_nonincreasing(self, tiny_graph):
        result = _pso(tiny_graph).optimize()
        assert (np.diff(result.history) <= 0).all()

    def test_history_length(self, tiny_graph):
        result = _pso(tiny_graph, n_iterations=12).optimize()
        assert result.n_iterations_run == 12
        assert result.history.shape == (12,)

    def test_more_particles_no_worse(self, tiny_graph):
        small = _pso(tiny_graph, n_particles=2, n_iterations=10).optimize()
        large = _pso(tiny_graph, n_particles=60, n_iterations=10).optimize()
        assert large.best_fitness <= small.best_fitness

    def test_deterministic_given_seed(self, tiny_graph):
        r1 = _pso(tiny_graph).optimize()
        r2 = _pso(tiny_graph).optimize()
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best_assignment, r2.best_assignment)

    def test_full_result_deterministic_given_seed(self, tiny_graph):
        """Same seed → the same PSOResult twice, field for field.

        Regression test for the repair RNG fix: repair used to draw
        from the shared swarm stream, so *which* particles needed
        repair changed how much randomness later particles saw.  The
        whole trajectory — not just the final best — must now repeat.
        """
        r1 = _pso(tiny_graph, n_particles=12, n_iterations=15).optimize()
        r2 = _pso(tiny_graph, n_particles=12, n_iterations=15).optimize()
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best_assignment, r2.best_assignment)
        assert np.array_equal(r1.history, r2.history)
        assert r1.n_iterations_run == r2.n_iterations_run
        assert r1.n_evaluations == r2.n_evaluations

    def test_evaluation_count(self, tiny_graph):
        result = _pso(tiny_graph, n_particles=10, n_iterations=5).optimize()
        assert result.n_evaluations == 50


class TestWarmStart:
    def test_initial_assignment_bounds_result(self, tiny_graph):
        optimal = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        pso = _pso(tiny_graph, n_particles=5, n_iterations=3)
        result = pso.optimize(initial_assignments=optimal[None, :])
        assert result.best_fitness <= 5.0

    def test_1d_initial_accepted(self, tiny_graph):
        pso = _pso(tiny_graph, n_particles=5, n_iterations=3)
        result = pso.optimize(
            initial_assignments=np.array([0, 0, 0, 0, 1, 1, 1, 1])
        )
        assert result.best_fitness <= 5.0


class TestRepairIndependence:
    def test_repair_of_one_particle_cannot_couple_others(self, tiny_graph):
        """Whether particle 0 needs repair must not change particle 1's.

        Two identical optimizers repair two batches that differ only in
        particle 0 (feasible vs infeasible); every other particle's
        repaired row must come out identical.
        """
        def fresh():
            return BinaryPSO(
                InterconnectFitness(tiny_graph),
                n_neurons=8, n_clusters=2, capacity=4,
                config=PSOConfig(n_particles=4, n_iterations=1),
                seed=123,
            )

        feasible_row = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        overfull_row = np.array([0, 0, 0, 0, 0, 0, 0, 0])
        rest = np.array([
            [0, 0, 0, 1, 1, 0, 0, 0],   # overfull: needs repair
            [1, 1, 1, 1, 1, 0, 0, 1],   # overfull: needs repair
        ])
        batch_a = np.vstack([feasible_row, rest]).astype(np.int64)
        batch_b = np.vstack([overfull_row, rest]).astype(np.int64)

        repaired_a = fresh()._repair_batch(batch_a.copy())
        repaired_b = fresh()._repair_batch(batch_b.copy())
        assert np.array_equal(repaired_a[1:], repaired_b[1:])


class TestBinarizationModes:
    @pytest.mark.parametrize("mode", ["stochastic", "argmax"])
    def test_both_modes_feasible(self, tiny_graph, mode):
        result = _pso(tiny_graph, binarization=mode).optimize()
        assert is_feasible(result.best_assignment, 2, 4)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="binarization"):
            PSOConfig(binarization="quantum")


class TestEarlyStop:
    def test_patience_stops_early(self, tiny_graph):
        result = _pso(
            tiny_graph, n_iterations=100, early_stop_patience=3
        ).optimize()
        assert result.n_iterations_run < 100

    def test_bad_patience_rejected(self):
        with pytest.raises(ValueError):
            PSOConfig(early_stop_patience=0)


class TestProblemValidation:
    def test_impossible_capacity_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="cannot fit"):
            BinaryPSO(
                InterconnectFitness(tiny_graph),
                n_neurons=8, n_clusters=2, capacity=3,
            )

    def test_callable_fitness_accepted(self, tiny_graph):
        calls = []

        def fitness(batch):
            calls.append(batch.shape)
            return np.zeros(batch.shape[0])

        pso = BinaryPSO(fitness, n_neurons=8, n_clusters=2, capacity=4,
                        config=PSOConfig(n_particles=4, n_iterations=2),
                        seed=0)
        pso.optimize()
        assert calls and all(shape == (4, 8) for shape in calls)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(n_particles=0), dict(n_iterations=0), dict(v_max=0.0),
         dict(inertia=-0.1)],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PSOConfig(**kwargs)
