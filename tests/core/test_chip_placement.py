"""Chip-aware two-level placement on multi-chip topologies.

Acceptance: on a fig5-style workload (clustered communities whose
cluster ids interleave across chips under naive placement), the
hierarchical pass packs communicating clusters onto the same chip and
strictly reduces inter-chip traffic/hops versus naive placement — both
in closed form and on the cycle-accurate simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.placement import (
    inter_chip_traffic,
    pack_onto_chips,
    place_clusters,
)
from repro.core.traffic_matrix import cluster_traffic
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import NocConfig
from repro.noc.multichip import multichip
from repro.noc.parallel import summarize
from repro.noc.traffic import build_injections
from repro.snn.graph import SpikeGraph


def interleaved_communities(n_clusters=8, heavy=50.0, light=1.0):
    """Cluster traffic with two chatty communities, interleaved ids.

    Even clusters talk heavily to even clusters, odd to odd — so naive
    (identity) placement on a two-chip fabric strands half of every
    community on the far chip.
    """
    traffic = np.zeros((n_clusters, n_clusters))
    for i in range(n_clusters):
        for j in range(n_clusters):
            if i == j:
                continue
            traffic[i, j] = heavy if (i - j) % 2 == 0 else light
    return traffic


class TestPackOntoChips:
    def test_respects_chip_capacities(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=4)
        chips = pack_onto_chips(interleaved_communities(), topo)
        assert sorted(np.bincount(chips, minlength=2)) == [4, 4]

    def test_packs_communities_together(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=4)
        chips = pack_onto_chips(interleaved_communities(), topo)
        evens = {int(chips[k]) for k in range(0, 8, 2)}
        odds = {int(chips[k]) for k in range(1, 8, 2)}
        assert len(evens) == 1
        assert len(odds) == 1
        assert evens != odds

    def test_rejects_non_square_traffic(self):
        topo = multichip(4, n_chips=2, chip_kind="mesh")
        with pytest.raises(ValueError, match="square"):
            pack_onto_chips(np.zeros((2, 3)), topo)

    def test_four_chip_packing_feasible(self):
        topo = multichip(16, n_chips=4, chip_kind="mesh", bridge_latency=2)
        rng = np.random.default_rng(3)
        traffic = rng.random((16, 16))
        chips = pack_onto_chips(traffic, topo)
        assert np.bincount(chips, minlength=4).max() <= 4


class TestHierarchicalPlacement:
    def test_reduces_inter_chip_traffic_vs_naive(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=4)
        traffic = interleaved_communities()
        naive = np.arange(8)
        perm = place_clusters(traffic, topo)
        assert sorted(perm.tolist()) == list(range(8))  # a permutation
        assert inter_chip_traffic(traffic, perm, topo) < inter_chip_traffic(
            traffic, naive, topo
        )

    def test_flat_topology_placement_unchanged_by_dispatch(self):
        from repro.noc.topology import build_topology

        topo = build_topology("mesh", 6)
        rng = np.random.default_rng(11)
        traffic = rng.random((6, 6)) * 10
        perm = place_clusters(traffic, topo)
        assert sorted(perm.tolist()) == list(range(6))

    def test_single_cluster_trivial(self):
        topo = multichip(4, n_chips=2, chip_kind="mesh")
        perm = place_clusters(np.zeros((1, 1)), topo)
        assert perm.tolist() == [0]


class TestSimulatedAcceptance:
    """Fig5-style workload: fewer simulated inter-chip hops than naive."""

    def _workload(self):
        # 16 neurons, 2 per cluster; even/odd cluster communities as in
        # interleaved_communities, expressed as a spike graph.
        src, dst, weight = [], [], []
        for ci in range(8):
            for cj in range(8):
                if ci == cj or (ci - cj) % 2 != 0:
                    continue
                src.append(2 * ci)
                dst.append(2 * cj + 1)
                weight.append(40.0)
        # A sprinkle of cross-community chatter so every cluster talks.
        for ci in range(7):
            src.append(2 * ci)
            dst.append(2 * (ci + 1))
            weight.append(1.0)
        spike_times = [np.arange(0.0, 50.0, 5.0) for _ in range(16)]
        graph = SpikeGraph.from_edges(
            16, src, dst, weight, spike_times=spike_times, name="fig5_style"
        )
        assignment = np.arange(16) // 2  # neuron -> cluster, fixed
        return graph, assignment

    def _inter_chip_hops(self, topo, graph, assignment):
        schedule = build_injections(graph, assignment, topo, cycles_per_ms=10.0)
        stats = FastInterconnect(topo, config=NocConfig(backend="fast")).simulate(
            schedule.injections
        )
        assert stats.undelivered_count == 0
        return summarize(stats, topo).inter_chip_hops

    def test_placed_mapping_crosses_bridges_less(self):
        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=4)
        graph, assignment = self._workload()
        traffic = cluster_traffic(graph, assignment, 8)
        perm = place_clusters(traffic, topo)
        naive_hops = self._inter_chip_hops(topo, graph, assignment)
        placed_hops = self._inter_chip_hops(topo, graph, perm[assignment])
        assert placed_hops < naive_hops


class TestMapSnnMultichip:
    def test_pso_noc_objective_on_multichip(self, tiny_graph):
        """NoC-in-the-loop swarm scoring simulates the bridged fabric."""
        from repro.core.mapper import map_snn
        from repro.core.pso import PSOConfig
        from repro.hardware.presets import custom

        arch = custom(
            4,
            2,
            interconnect="mesh",
            n_chips=2,
            bridge_latency=2,
            name="board",
        )
        result = map_snn(
            tiny_graph,
            arch,
            method="pso",
            objective="noc",
            seed=7,
            pso_config=PSOConfig(n_particles=6, n_iterations=3),
        )
        assert result.partition.n_clusters == 4
        assert result.extras["objective"] == "noc"

    def test_placement_pass_runs_hierarchically(self, tiny_graph):
        from repro.core.mapper import map_snn
        from repro.hardware.presets import custom

        arch = custom(
            4,
            2,
            interconnect="mesh",
            n_chips=2,
            bridge_latency=4,
            name="board",
        )
        result = map_snn(tiny_graph, arch, method="pacman")
        perm = result.extras["placement"]
        assert sorted(perm.tolist()) == list(range(4))
