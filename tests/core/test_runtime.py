"""Tests for run-time incremental remapping."""

import numpy as np
import pytest

from repro.core.partition import is_feasible
from repro.core.runtime import FaultEvent, RuntimeRemapper
from repro.snn.graph import SpikeGraph


def _remapper(graph, assignment, **kwargs):
    return RuntimeRemapper(
        graph, n_clusters=2, capacity=4,
        assignment=np.asarray(assignment), **kwargs,
    )


class TestConstruction:
    def test_infeasible_initial_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="feasible"):
            _remapper(tiny_graph, [0] * 8)

    def test_fitness_matches_matrix(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 0, 0, 0, 1, 1, 1, 1])
        assert rm.fitness() == 5.0


class TestRemapEpoch:
    def test_improves_bad_mapping(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 1, 0, 1, 0, 1, 0, 1],
                       migration_budget=8)
        epoch = rm.remap_epoch()
        assert epoch.fitness_after < epoch.fitness_before
        assert is_feasible(rm.assignment, 2, 4)

    def test_reaches_optimum_with_budget(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 1, 0, 1, 0, 1, 0, 1],
                       migration_budget=8)
        for _ in range(4):
            rm.remap_epoch()
        assert rm.fitness() == 5.0

    def test_budget_limits_moves(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 1, 0, 1, 0, 1, 0, 1],
                       migration_budget=1)
        epoch = rm.remap_epoch()
        assert epoch.n_migrations <= 1

    def test_optimal_mapping_stays_put(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 0, 0, 0, 1, 1, 1, 1])
        epoch = rm.remap_epoch()
        assert epoch.n_migrations == 0
        assert epoch.improvement == 0.0

    def test_moves_recorded_with_gains(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 1, 0, 1, 0, 1, 0, 1],
                       migration_budget=8)
        epoch = rm.remap_epoch()
        # A swap's gain is split across its two moves: the first carries
        # its sequential move gain, the second the remainder, so
        # per-move gains always sum to the epoch's total improvement
        # (individual halves may be negative when one side only pays
        # off because of its partner).
        assert any(m.gain > 0 for m in epoch.moves)
        assert epoch.improvement == pytest.approx(
            sum(m.gain for m in epoch.moves)
        )

    def test_history_accumulates(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 1, 0, 1, 0, 1, 0, 1],
                       migration_budget=2)
        rm.remap_epoch()
        rm.remap_epoch()
        assert len(rm.history) == 2
        assert rm.total_migrations() == sum(
            e.n_migrations for e in rm.history
        )


class TestEdgeCases:
    def test_zero_budget_is_noop_epoch(self, tiny_graph):
        """budget=0 observes and audits but may not move anything."""
        bad = [0, 1, 0, 1, 0, 1, 0, 1]
        rm = _remapper(tiny_graph, bad, migration_budget=0)
        before = rm.fitness()
        epoch = rm.remap_epoch()
        assert epoch.n_migrations == 0
        assert epoch.moves == []
        assert epoch.fitness_before == before
        assert epoch.fitness_after == before
        assert epoch.improvement == 0.0
        assert np.array_equal(rm.assignment, np.asarray(bad))
        assert len(rm.history) == 1  # the dry-run epoch is still audited

    def test_moves_into_full_crossbars_rejected(self):
        """With every crossbar full, single moves are infeasible.

        Neurons 0 and 2 want to swap sides (heavy 0<->2 traffic) but
        both clusters sit at capacity, so a budget of 1 — too small for
        a swap — must yield a no-move epoch and an unchanged, feasible
        assignment.
        """
        src = [0, 2, 1, 3]
        dst = [2, 0, 3, 1]
        traffic = np.array([80.0, 80.0, 1.0, 1.0])
        g = SpikeGraph.from_edges(4, src, dst, traffic)
        rm = RuntimeRemapper(
            g, n_clusters=2, capacity=2,
            assignment=np.array([0, 0, 1, 1]),
            migration_budget=1,
        )
        epoch = rm.remap_epoch()
        assert epoch.n_migrations == 0
        assert np.array_equal(rm.assignment, np.array([0, 0, 1, 1]))
        assert is_feasible(rm.assignment, 2, 2)

    def test_budget_two_allows_the_blocked_swap(self):
        """The same blocked exchange goes through once a swap fits."""
        src = [0, 2, 1, 3]
        dst = [2, 0, 3, 1]
        traffic = np.array([80.0, 80.0, 1.0, 1.0])
        g = SpikeGraph.from_edges(4, src, dst, traffic)
        rm = RuntimeRemapper(
            g, n_clusters=2, capacity=2,
            assignment=np.array([0, 0, 1, 1]),
            migration_budget=2,
        )
        epoch = rm.remap_epoch()
        assert epoch.n_migrations == 2
        assert epoch.improvement > 0
        assert is_feasible(rm.assignment, 2, 2)
        # The swap's gain is attributed across both of its moves.
        assert epoch.improvement == pytest.approx(
            sum(m.gain for m in epoch.moves)
        )

    def test_epoch_gains_sum_to_fitness_delta(self, tiny_graph):
        """Audit invariant: per-epoch gains add up to the fitness drop."""
        rm = _remapper(tiny_graph, [0, 1, 0, 1, 0, 1, 0, 1],
                       migration_budget=3)
        initial = rm.fitness()
        for _ in range(4):
            epoch = rm.remap_epoch()
            assert epoch.improvement == pytest.approx(
                sum(m.gain for m in epoch.moves)
            )
            assert epoch.fitness_after == pytest.approx(
                epoch.fitness_before - epoch.improvement
            )
        total_gain = sum(
            m.gain for e in rm.history for m in e.moves
        )
        assert initial - rm.fitness() == pytest.approx(total_gain)

    def test_negative_budget_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="non-negative"):
            _remapper(tiny_graph, [0, 0, 0, 0, 1, 1, 1, 1],
                      migration_budget=-1)


class TestTrafficDrift:
    def test_observe_traffic_changes_optimum(self):
        """When traffic shifts, the remapper follows it.

        Initially neurons {0,1} {2,3} talk; mapping is optimal.  Then the
        traffic shifts so {0,2} {1,3} talk instead: remapping must swap.
        """
        src = [0, 1, 2, 3, 0, 2]
        dst = [1, 0, 3, 2, 2, 0]
        traffic_before = np.array([50.0, 50.0, 50.0, 50.0, 1.0, 1.0])
        g = SpikeGraph.from_edges(4, src, dst, traffic_before)
        rm = RuntimeRemapper(g, n_clusters=2, capacity=2,
                             assignment=np.array([0, 0, 1, 1]),
                             migration_budget=4)
        assert rm.remap_epoch().n_migrations == 0  # already optimal

        traffic_after = np.array([1.0, 1.0, 1.0, 1.0, 80.0, 80.0])
        rm.observe_traffic(traffic_after)
        before = rm.fitness()
        # Capacity is tight (2 per cluster): single moves are blocked, but
        # two epochs of budget-2 move-chains cannot fix a swap; verify the
        # remapper at least never regresses and reports honestly.
        epoch = rm.remap_epoch()
        assert epoch.fitness_after <= before

    def test_observe_rejects_bad_shape(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 0, 0, 0, 1, 1, 1, 1])
        with pytest.raises(ValueError, match="shape"):
            rm.observe_traffic(np.ones(3))

    def test_observe_rejects_negative(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 0, 0, 0, 1, 1, 1, 1])
        with pytest.raises(ValueError, match="non-negative"):
            rm.observe_traffic(-tiny_graph.traffic)

    def test_observe_traffic_leaves_caller_graph_untouched(self, tiny_graph):
        """Observations update the remapper's copy, never the shared graph."""
        original = tiny_graph.traffic.copy()
        rm = _remapper(tiny_graph, [0, 0, 0, 0, 1, 1, 1, 1])
        rm.observe_traffic(np.ones_like(tiny_graph.traffic))
        assert np.array_equal(tiny_graph.traffic, original)
        # The remapper itself did pick up the new observations.
        assert np.array_equal(
            rm.graph.traffic, np.ones_like(original)
        )

    def test_construction_does_not_alias_traffic(self, tiny_graph):
        """The remapper's private copy is taken at construction time."""
        rm = _remapper(tiny_graph, [0, 0, 0, 0, 1, 1, 1, 1])
        before = rm.fitness()
        tiny_graph.traffic[:] = 0.0
        assert rm.fitness() == before

    def test_drift_with_slack_capacity_recovers_optimum(self):
        """With one free slot per cluster, drift is fully repairable."""
        src = [0, 1, 2, 3, 0, 2]
        dst = [1, 0, 3, 2, 2, 0]
        g = SpikeGraph.from_edges(
            4, src, dst, np.array([50.0, 50.0, 50.0, 50.0, 1.0, 1.0])
        )
        rm = RuntimeRemapper(g, n_clusters=2, capacity=3,
                             assignment=np.array([0, 0, 1, 1]),
                             migration_budget=4)
        rm.observe_traffic(np.array([1.0, 1.0, 1.0, 1.0, 80.0, 80.0]))
        for _ in range(3):
            rm.remap_epoch()
        # Optimal now: {0, 1, 2} share a cluster (capacity 3), leaving
        # only the light 2<->3 edges (traffic 1 + 1) on the interconnect.
        assert rm.fitness() == 2.0


class TestFaultEvents:
    """Live crossbar faults: the remapper evacuates under its budget."""

    def _three_cluster_remapper(self, tiny_graph, **kwargs):
        # 8 neurons over 3 clusters of 4: one spare cluster's worth of
        # slack, so any single crossbar fault is fully absorbable.
        return RuntimeRemapper(
            tiny_graph, n_clusters=3, capacity=4,
            assignment=np.array([0, 0, 0, 0, 1, 1, 1, 1]), **kwargs,
        )

    def test_fault_evacuates_all_neurons(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph, migration_budget=4)
        rm.apply_fault(FaultEvent(crossbar=0, time=3.0))
        epoch = rm.remap_epoch()
        assert rm.evacuated(0)
        assert rm.neurons_on(0) == []
        assert epoch.n_migrations == 4
        assert all(m.forced for m in epoch.moves)
        assert all(m.from_cluster == 0 for m in epoch.moves)
        assert is_feasible(rm.assignment, 3, 4)

    def test_forced_gains_sum_to_improvement(self, tiny_graph):
        """The audit invariant holds even with negative forced gains."""
        rm = self._three_cluster_remapper(tiny_graph, migration_budget=8)
        rm.mark_crossbar_faulty(0)
        epoch = rm.remap_epoch()
        assert epoch.improvement == pytest.approx(
            sum(m.gain for m in epoch.moves)
        )
        assert epoch.fitness_after == pytest.approx(
            epoch.fitness_before - epoch.improvement
        )

    def test_budget_limits_evacuation(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph, migration_budget=2)
        rm.mark_crossbar_faulty(0)
        epoch = rm.remap_epoch()
        assert epoch.n_migrations == 2
        assert not rm.evacuated(0)
        assert len(rm.neurons_on(0)) == 2
        # A second epoch finishes the evacuation.
        rm.remap_epoch()
        assert rm.evacuated(0)

    def test_no_moves_back_onto_faulty_cluster(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph, migration_budget=8)
        rm.mark_crossbar_faulty(0)
        for _ in range(4):
            epoch = rm.remap_epoch()
            assert all(m.to_cluster != 0 for m in epoch.moves)
        assert rm.evacuated(0)

    def test_insufficient_healthy_capacity_rejected(self, tiny_graph):
        rm = _remapper(tiny_graph, [0, 0, 0, 0, 1, 1, 1, 1])
        with pytest.raises(ValueError, match="healthy"):
            rm.mark_crossbar_faulty(1)
        assert rm.faulty_clusters == set()

    def test_out_of_range_crossbar_rejected(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph)
        with pytest.raises(ValueError, match="out of range"):
            rm.apply_fault(FaultEvent(crossbar=3))

    def test_fault_log_records_events(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph)
        event = FaultEvent(crossbar=1, time=7.0, description="stuck rows")
        rm.apply_fault(event)
        assert rm.fault_log == [event]

    def test_zero_budget_fault_epoch_moves_nothing(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph, migration_budget=0)
        rm.mark_crossbar_faulty(0)
        epoch = rm.remap_epoch()
        assert epoch.moves == []
        assert not rm.evacuated(0)


class TestHealEvents:
    """Transient faults: a cleared crossbar is re-admitted for load."""

    def _three_cluster_remapper(self, tiny_graph, **kwargs):
        return RuntimeRemapper(
            tiny_graph, n_clusters=3, capacity=4,
            assignment=np.array([0, 0, 0, 0, 1, 1, 1, 1]), **kwargs,
        )

    def test_clear_reopens_cluster(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph, migration_budget=8)
        rm.mark_crossbar_faulty(0)
        rm.remap_epoch()
        assert rm.evacuated(0)
        rm.mark_crossbar_healed(0)
        assert rm.faulty_clusters == set()
        # The healed cluster is a first-class citizen again: a later
        # fault elsewhere evacuates straight onto it (capacity-wise
        # the only possible refuge), under the ordinary budget.
        rm.mark_crossbar_faulty(2)
        rm.remap_epoch()
        assert rm.evacuated(2)
        assert len(rm.neurons_on(0)) == 4
        assert rm.fitness() == 5.0

    def test_clear_unknown_fault_rejected(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph)
        with pytest.raises(ValueError, match="not marked faulty"):
            rm.mark_crossbar_healed(2)

    def test_heal_log_records_events(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph)
        rm.mark_crossbar_faulty(0)
        event = FaultEvent(crossbar=0, time=9.0, description="healed")
        rm.clear_fault(event)
        assert rm.heal_log == [event]
        assert rm.fault_log[-1].crossbar == 0  # arrival still on record

    def test_sync_faults_diffs_target_set(self, tiny_graph):
        rm = self._three_cluster_remapper(tiny_graph, migration_budget=8)
        arrived, cleared = rm.sync_faults({0}, time=1.0)
        assert (arrived, cleared) == ([0], [])
        assert rm.faulty_clusters == {0}
        arrived, cleared = rm.sync_faults({2}, time=2.0)
        assert (arrived, cleared) == ([2], [0])
        assert rm.faulty_clusters == {2}
        # No-op sync reports nothing.
        assert rm.sync_faults({2}, time=3.0) == ([], [])


class TestRunFaultTimeline:
    def _three_cluster_remapper(self, tiny_graph, **kwargs):
        return RuntimeRemapper(
            tiny_graph, n_clusters=3, capacity=4,
            assignment=np.array([0, 0, 0, 0, 1, 1, 1, 1]), **kwargs,
        )

    def _transient(self):
        from repro.noc.faults import FaultSet, FaultTimeline, FaultWindow

        return FaultTimeline([
            FaultWindow(FaultSet(faulty_crossbars=[0]), arrive=1.0,
                        clear=5.0),
        ])

    def test_arrive_then_clear_cycle(self, tiny_graph):
        from repro.core.runtime import run_fault_timeline

        rm = self._three_cluster_remapper(tiny_graph, migration_budget=8)
        steps = run_fault_timeline(rm, self._transient(), epochs_per_edge=2)
        assert [s.time for s in steps] == [1.0, 5.0]
        assert steps[0].arrived == (0,) and steps[0].cleared == ()
        assert steps[1].arrived == () and steps[1].cleared == (0,)
        # Evacuation happened at the arrive edge...
        assert all(m.from_cluster == 0 for m in steps[0].epochs[0].moves)
        # ...and the heal edge left the remapper fault-free at optimum.
        assert rm.faulty_clusters == set()
        assert rm.fitness() == 5.0
        assert len(rm.history) == 4  # 2 edges x 2 epochs, all audited

    def test_epochs_per_edge_validated(self, tiny_graph):
        from repro.core.runtime import run_fault_timeline

        rm = self._three_cluster_remapper(tiny_graph)
        with pytest.raises(ValueError):
            run_fault_timeline(rm, self._transient(), epochs_per_edge=0)
