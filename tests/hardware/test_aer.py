"""Tests for the AER encoder/decoder."""

import numpy as np
import pytest

from repro.hardware.aer import AEREvent, decode_events, encode_spike_trains


class TestIdealChannel:
    def test_round_trip(self):
        trains = [np.array([3.0, 0.5]), np.array([1.0]), np.empty(0)]
        events = encode_spike_trains(trains)
        decoded = decode_events(events, 3)
        assert np.array_equal(decoded[0], np.array([0.5, 3.0]))
        assert np.array_equal(decoded[1], np.array([1.0]))
        assert decoded[2].size == 0

    def test_events_time_ordered(self):
        trains = [np.array([5.0, 1.0]), np.array([3.0])]
        events = encode_spike_trains(trains)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_paper_fig2_example(self):
        """Four neurons spiking at t = 3, 0, 1, 2 serialize as 1, 2, 3, 0."""
        trains = [np.array([3.0]), np.array([0.0]), np.array([1.0]),
                  np.array([2.0])]
        events = encode_spike_trains(trains)
        assert [e.address for e in events] == [1, 2, 3, 0]


class TestTimeMultiplexing:
    def test_slot_capacity_delays_surplus(self):
        # Three simultaneous spikes through a 1-event/slot channel.
        trains = [np.array([0.0]), np.array([0.0]), np.array([0.0])]
        events = encode_spike_trains(trains, events_per_slot=1, slot_ms=1.0)
        depart_times = sorted(e.time for e in events)
        assert depart_times == [0.0, 1.0, 2.0]

    def test_wide_channel_no_delay(self):
        trains = [np.array([0.0]), np.array([0.0])]
        events = encode_spike_trains(trains, events_per_slot=4)
        assert all(e.time == 0.0 for e in events)

    def test_departure_never_before_spike(self):
        rng = np.random.default_rng(0)
        trains = [np.sort(rng.uniform(0, 50, 20)) for _ in range(4)]
        events = encode_spike_trains(trains, events_per_slot=2)
        originals = sorted(
            (t, i) for i, tr in enumerate(trains) for t in tr
        )
        departs = sorted((e.time, e.address) for e in events)
        for (t0, _), (t1, _) in zip(originals, departs):
            assert t1 >= t0 - 1e-9


class TestDecodeValidation:
    def test_address_out_of_range(self):
        with pytest.raises(ValueError, match="address"):
            decode_events([AEREvent(address=5, time=0.0)], 3)

    def test_n_neurons_positive(self):
        with pytest.raises(ValueError):
            decode_events([], 0)
