"""Tests for memristor weight quantization."""

import numpy as np
import pytest

from repro.hardware.quantization import (
    quantization_report,
    quantize_graph,
    quantize_weights,
)


class TestQuantizeWeights:
    def test_zero_preserved_exactly(self):
        w = np.array([0.0, 0.3, 0.0, -0.7])
        q = quantize_weights(w, n_bits=2)
        assert q[0] == 0.0 and q[2] == 0.0

    def test_no_new_synapses(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(-1, 1, 100)
        w[rng.random(100) < 0.5] = 0.0
        q = quantize_weights(w, n_bits=3)
        assert ((w == 0) == (q == 0 * (w == 0))).all() or (
            (q[w == 0] == 0).all()
        )

    def test_small_weights_can_vanish_but_not_flip(self):
        # A tiny weight may round to zero (below half a level) but a
        # weight can never change sign.
        w = np.array([0.01, -0.01, 1.0])
        q = quantize_weights(w, n_bits=2)
        assert (np.sign(q) * np.sign(w) >= 0).all()

    def test_error_bounded_by_half_step(self):
        rng = np.random.default_rng(1)
        w = rng.uniform(-2, 2, 500)
        n_bits = 4
        q = quantize_weights(w, n_bits=n_bits)
        step = np.abs(w).max() / (2**n_bits - 1)
        assert np.abs(q - w).max() <= step / 2 + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        w = rng.uniform(-1, 1, 300)
        err = {
            b: np.abs(quantize_weights(w, n_bits=b) - w).mean()
            for b in (2, 4, 8)
        }
        assert err[8] < err[4] < err[2]

    def test_levels_count(self):
        rng = np.random.default_rng(3)
        w = rng.uniform(0, 1, 2000)
        q = quantize_weights(w, n_bits=3)
        assert len(np.unique(q)) <= 2**3  # 7 levels + zero

    def test_clipping_at_full_scale(self):
        w = np.array([0.5, 3.0])
        q = quantize_weights(w, n_bits=4, w_max=1.0)
        assert q[1] == 1.0

    def test_all_zero_input(self):
        q = quantize_weights(np.zeros(5), n_bits=4)
        assert (q == 0).all()

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_weights(np.ones(3), n_bits=0)


class TestQuantizationReport:
    def test_counts(self):
        w = np.array([0.0, 0.5, -0.5, 1.0])
        report = quantization_report(w, n_bits=4)
        assert report.n_weights == 3
        assert report.n_levels == 15
        assert report.max_abs_error >= report.mean_abs_error

    def test_saturation_counted(self):
        report = quantization_report(
            np.array([0.5, 2.0, 3.0]), n_bits=4, w_max=1.0
        )
        assert report.n_saturated == 2


class TestQuantizeGraph:
    def test_traffic_untouched_and_partition_invariant(self, tiny_graph):
        """Quantization changes weights, never mapping inputs."""
        from repro.core.fitness import InterconnectFitness

        traffic_before = tiny_graph.traffic.copy()
        fit_before = InterconnectFitness(tiny_graph).evaluate(
            np.array([0, 0, 0, 0, 1, 1, 1, 1])
        )
        report = quantize_graph(tiny_graph, n_bits=3)
        assert np.array_equal(tiny_graph.traffic, traffic_before)
        fit_after = InterconnectFitness(tiny_graph).evaluate(
            np.array([0, 0, 0, 0, 1, 1, 1, 1])
        )
        assert fit_after == fit_before
        assert report.n_weights == tiny_graph.n_synapses
