"""Tests for the platform config parser / round trip."""

import pytest

from repro.hardware.config import (
    architecture_from_config,
    architecture_to_config,
    load_architecture,
    parse_config_text,
    render_config_text,
    save_architecture,
)
from repro.hardware.energy_model import EnergyModel
from repro.hardware.presets import custom, cxquad


class TestParseConfigText:
    def test_scalars(self):
        cfg = parse_config_text("name: chip\nn: 4\nrate: 2.5\n")
        assert cfg == {"name": "chip", "n": 4, "rate": 2.5}

    def test_comments_and_blank_lines(self):
        cfg = parse_config_text("# header\n\na: 1  # trailing\n")
        assert cfg == {"a": 1}

    def test_section(self):
        cfg = parse_config_text("energy:\n  e_router_pj: 9.0\n  e_link_pj: 4.5\n")
        assert cfg == {"energy": {"e_router_pj": 9.0, "e_link_pj": 4.5}}

    def test_tab_rejected(self):
        with pytest.raises(ValueError, match="tabs"):
            parse_config_text("a:\n\tb: 1\n")

    def test_orphan_indent_rejected(self):
        with pytest.raises(ValueError, match="outside any section"):
            parse_config_text("  a: 1\n")

    def test_missing_colon_rejected(self):
        with pytest.raises(ValueError, match="key: value"):
            parse_config_text("just words\n")

    def test_deep_nesting_rejected(self):
        with pytest.raises(ValueError, match="deeper"):
            parse_config_text("a:\n  b:\n")


class TestRenderRoundTrip:
    def test_round_trip(self):
        cfg = {"name": "x", "n_crossbars": 4,
               "energy": {"e_router_pj": 9.0}}
        assert parse_config_text(render_config_text(cfg)) == cfg


class TestArchitectureConfig:
    def test_to_from_round_trip(self):
        arch = custom(6, 64, interconnect="mesh", cycles_per_ms=5.0,
                      energy=EnergyModel(e_router_pj=7.5), name="rt")
        clone = architecture_from_config(architecture_to_config(arch))
        assert clone == arch

    def test_missing_required_keys(self):
        with pytest.raises(ValueError, match="missing"):
            architecture_from_config({"name": "x"})

    def test_defaults_applied(self):
        arch = architecture_from_config(
            {"n_crossbars": 2, "neurons_per_crossbar": 8}
        )
        assert arch.interconnect == "tree"
        assert arch.energy == EnergyModel()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "chip.yaml"
        save_architecture(cxquad(), path)
        loaded = load_architecture(path)
        assert loaded == cxquad()

    def test_hand_written_file(self, tmp_path):
        path = tmp_path / "hand.yaml"
        path.write_text(
            "# CxQuad-ish\n"
            "name: hand\n"
            "n_crossbars: 4\n"
            "neurons_per_crossbar: 128\n"
            "interconnect: star\n"
            "energy:\n"
            "  e_router_pj: 1.0\n"
            "  e_link_pj: 0.5\n",
            encoding="utf-8",
        )
        arch = load_architecture(path)
        assert arch.n_crossbars == 4
        assert arch.interconnect == "star"
        assert arch.energy.e_router_pj == 1.0
        # Unspecified coefficients keep their defaults.
        assert arch.energy.e_encode_pj == EnergyModel().e_encode_pj


class TestMultiChipConfig:
    def test_round_trip_chip_fields(self, tmp_path):
        arch = custom(8, 32, interconnect="mesh", n_chips=2, bridge_latency=6)
        path = tmp_path / "board.yaml"
        save_architecture(arch, path)
        loaded = load_architecture(path)
        assert loaded.n_chips == 2
        assert loaded.bridge_latency == 6
        assert loaded.energy == arch.energy

    def test_defaults_to_single_chip(self):
        arch = architecture_from_config(
            {"n_crossbars": 4, "neurons_per_crossbar": 8}
        )
        assert arch.n_chips == 1
        assert arch.bridge_latency == 1

    def test_config_text_carries_bridge_energy(self, tmp_path):
        from repro.hardware.energy_model import EnergyModel

        arch = custom(4, 8, n_chips=2, energy=EnergyModel(e_bridge_pj=99.0))
        path = tmp_path / "board.yaml"
        save_architecture(arch, path)
        assert "e_bridge_pj: 99.0" in path.read_text(encoding="utf-8")
        assert load_architecture(path).energy.e_bridge_pj == 99.0
