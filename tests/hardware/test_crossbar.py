"""Tests for the crossbar tile model."""

import pytest

from repro.hardware.crossbar import Crossbar


class TestPlacement:
    def test_place_and_query(self):
        xbar = Crossbar(index=0, capacity=3)
        xbar.place(5)
        xbar.place(2)
        assert xbar.neurons == [2, 5]
        assert xbar.occupancy == 2
        assert xbar.free_slots == 1
        assert xbar.contains(5) and not xbar.contains(9)

    def test_capacity_enforced(self):
        xbar = Crossbar(index=0, capacity=1)
        xbar.place(0)
        with pytest.raises(OverflowError):
            xbar.place(1)

    def test_duplicate_rejected(self):
        xbar = Crossbar(index=0, capacity=4)
        xbar.place(3)
        with pytest.raises(ValueError, match="already"):
            xbar.place(3)

    def test_place_all(self):
        xbar = Crossbar(index=1, capacity=4)
        xbar.place_all([1, 2, 3])
        assert xbar.occupancy == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Crossbar(index=0, capacity=0)


class TestLocalAccounting:
    def test_local_synapses(self, tiny_graph):
        xbar = Crossbar(index=0, capacity=4)
        xbar.place_all([0, 1, 2, 3])
        # 12 directed heavy edges within {0..3}; the bridge 3->4 is not local.
        assert xbar.local_synapses(tiny_graph) == 12

    def test_local_spike_events(self, tiny_graph):
        xbar = Crossbar(index=0, capacity=4)
        xbar.place_all([0, 1, 2, 3])
        assert xbar.local_spike_events(tiny_graph) == 12 * 100.0

    def test_empty_crossbar_zero(self, tiny_graph):
        xbar = Crossbar(index=0, capacity=4)
        assert xbar.local_synapses(tiny_graph) == 0
        assert xbar.local_spike_events(tiny_graph) == 0.0
