"""Tests for the energy model."""

import pytest

from repro.hardware.energy_model import EnergyBreakdown, EnergyModel
from repro.noc.stats import DeliveryRecord, NocStats


class TestLocalEnergy:
    def test_scales_with_crossbar_size(self):
        model = EnergyModel(e_local_event_pj=2.0, reference_crossbar_size=128)
        assert model.local_event_energy_pj(128) == 2.0
        assert model.local_event_energy_pj(256) == 4.0
        assert model.local_event_energy_pj(64) == 1.0

    def test_total_local_energy(self):
        model = EnergyModel(e_local_event_pj=1.0, reference_crossbar_size=100)
        assert model.local_energy_pj(1000.0, 100) == 1000.0

    def test_zero_events_zero_energy(self):
        assert EnergyModel().local_energy_pj(0.0, 128) == 0.0

    def test_negative_events_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().local_energy_pj(-1.0, 128)


class TestGlobalEnergy:
    def _stats(self, hops: int, injected: int, delivered: int) -> NocStats:
        stats = NocStats()
        for i in range(hops):
            stats.count_link(i, i + 1)
        stats.n_injected = injected
        for i in range(delivered):
            stats.record(DeliveryRecord(uid=i, src_neuron=0, src_node=0,
                                        dst_node=1, injected_cycle=0,
                                        delivered_cycle=1, hops=1))
        return stats

    def test_breakdown(self):
        model = EnergyModel(e_router_pj=2.0, e_link_pj=1.0,
                            e_encode_pj=4.0, e_decode_pj=5.0)
        stats = self._stats(hops=10, injected=3, delivered=4)
        assert model.global_energy_pj(stats) == 10 * 3.0 + 3 * 4.0 + 4 * 5.0

    def test_empty_stats_zero(self):
        assert EnergyModel().global_energy_pj(NocStats()) == 0.0

    def test_analytic_estimate_matches_formula(self):
        model = EnergyModel(e_router_pj=2.0, e_link_pj=1.0,
                            e_encode_pj=4.0, e_decode_pj=5.0)
        assert model.estimate_global_energy_pj(
            spike_hops=10, packets=3, deliveries=4
        ) == 10 * 3.0 + 3 * 4.0 + 4 * 5.0


class TestEnergyBreakdown:
    def test_totals_and_units(self):
        b = EnergyBreakdown(local_pj=1e6, global_pj=2e6)
        assert b.total_pj == 3e6
        assert b.local_uj == 1.0
        assert b.global_uj == 2.0
        assert b.total_uj == 3.0


class TestConfigRoundTrip:
    def test_to_from_dict(self):
        model = EnergyModel(e_router_pj=7.0)
        clone = EnergyModel.from_dict(model.to_dict())
        assert clone == model

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            EnergyModel.from_dict({"e_rocket_pj": 1.0})

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(e_router_pj=-1.0)


class TestBridgeEnergy:
    def _multichip_stats(self):
        from repro.noc.fastsim import FastInterconnect
        from repro.noc.interconnect import NocConfig
        from repro.noc.multichip import multichip
        from repro.noc.traffic import synthetic_injections

        topo = multichip(8, n_chips=2, chip_kind="mesh", bridge_latency=2)
        schedule = synthetic_injections([0.3] * 8, topo, 60, fanout=2, seed=6)
        stats = FastInterconnect(
            topo, config=NocConfig(backend="fast")
        ).simulate(schedule.injections)
        return topo, stats

    def test_bridge_term_charged_per_crossing(self):
        topo, stats = self._multichip_stats()
        model = EnergyModel(e_bridge_pj=50.0)
        crossings = topo.bridge_crossings(stats.link_loads)
        assert crossings > 0
        assert model.global_energy_pj(stats, topo) == pytest.approx(
            model.global_energy_pj(stats) + crossings * 50.0
        )

    def test_flat_topology_adds_nothing(self):
        from repro.noc.topology import build_topology

        topo, stats = self._multichip_stats()
        flat = build_topology("mesh", 4)
        model = EnergyModel(e_bridge_pj=50.0)
        assert model.global_energy_pj(stats, flat) == model.global_energy_pj(stats)

    def test_estimate_includes_bridge_crossings(self):
        model = EnergyModel(e_router_pj=1.0, e_link_pj=1.0, e_encode_pj=0.0,
                            e_decode_pj=0.0, e_bridge_pj=10.0)
        base = model.estimate_global_energy_pj(5.0, 2.0, 2.0)
        with_bridges = model.estimate_global_energy_pj(
            5.0, 2.0, 2.0, bridge_crossings=3.0
        )
        assert with_bridges == base + 30.0

    def test_negative_bridge_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(e_bridge_pj=-1.0)

    def test_round_trip_carries_bridge_energy(self):
        model = EnergyModel(e_bridge_pj=77.0)
        assert EnergyModel.from_dict(model.to_dict()).e_bridge_pj == 77.0
