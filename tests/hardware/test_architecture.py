"""Tests for the architecture description."""

import pytest

from repro.hardware.architecture import Architecture


class TestArchitecture:
    def test_total_capacity(self):
        arch = Architecture(n_crossbars=4, neurons_per_crossbar=128)
        assert arch.total_capacity == 512

    def test_fits(self):
        arch = Architecture(n_crossbars=2, neurons_per_crossbar=10)
        assert arch.fits(20) and not arch.fits(21)

    def test_require_fits_raises(self):
        arch = Architecture(n_crossbars=2, neurons_per_crossbar=10, name="t")
        with pytest.raises(ValueError, match="exceeds"):
            arch.require_fits(21)

    def test_build_topology_matches_crossbars(self):
        arch = Architecture(n_crossbars=6, neurons_per_crossbar=8,
                            interconnect="mesh")
        topo = arch.build_topology()
        assert topo.n_attach_points == 6
        assert topo.kind == "mesh"

    def test_build_crossbars(self):
        arch = Architecture(n_crossbars=3, neurons_per_crossbar=7)
        xbars = arch.build_crossbars()
        assert len(xbars) == 3
        assert all(x.capacity == 7 for x in xbars)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Architecture(n_crossbars=0, neurons_per_crossbar=8)
        with pytest.raises(ValueError):
            Architecture(n_crossbars=2, neurons_per_crossbar=-1)


class TestScaledTo:
    def test_crossbar_count_derived(self):
        arch = Architecture(n_crossbars=4, neurons_per_crossbar=128)
        scaled = arch.scaled_to(n_neurons=300, neurons_per_crossbar=100)
        assert scaled.neurons_per_crossbar == 100
        assert scaled.n_crossbars == 3
        assert scaled.fits(300)

    def test_exact_division(self):
        arch = Architecture(n_crossbars=1, neurons_per_crossbar=1)
        scaled = arch.scaled_to(n_neurons=200, neurons_per_crossbar=100)
        assert scaled.n_crossbars == 2

    def test_preserves_interconnect(self):
        arch = Architecture(n_crossbars=4, neurons_per_crossbar=8,
                            interconnect="star")
        assert arch.scaled_to(16, 4).interconnect == "star"
