"""Tests for the architecture description."""

import pytest

from repro.hardware.architecture import Architecture


class TestArchitecture:
    def test_total_capacity(self):
        arch = Architecture(n_crossbars=4, neurons_per_crossbar=128)
        assert arch.total_capacity == 512

    def test_fits(self):
        arch = Architecture(n_crossbars=2, neurons_per_crossbar=10)
        assert arch.fits(20) and not arch.fits(21)

    def test_require_fits_raises(self):
        arch = Architecture(n_crossbars=2, neurons_per_crossbar=10, name="t")
        with pytest.raises(ValueError, match="exceeds"):
            arch.require_fits(21)

    def test_build_topology_matches_crossbars(self):
        arch = Architecture(n_crossbars=6, neurons_per_crossbar=8,
                            interconnect="mesh")
        topo = arch.build_topology()
        assert topo.n_attach_points == 6
        assert topo.kind == "mesh"

    def test_build_crossbars(self):
        arch = Architecture(n_crossbars=3, neurons_per_crossbar=7)
        xbars = arch.build_crossbars()
        assert len(xbars) == 3
        assert all(x.capacity == 7 for x in xbars)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Architecture(n_crossbars=0, neurons_per_crossbar=8)
        with pytest.raises(ValueError):
            Architecture(n_crossbars=2, neurons_per_crossbar=-1)


class TestScaledTo:
    def test_crossbar_count_derived(self):
        arch = Architecture(n_crossbars=4, neurons_per_crossbar=128)
        scaled = arch.scaled_to(n_neurons=300, neurons_per_crossbar=100)
        assert scaled.neurons_per_crossbar == 100
        assert scaled.n_crossbars == 3
        assert scaled.fits(300)

    def test_exact_division(self):
        arch = Architecture(n_crossbars=1, neurons_per_crossbar=1)
        scaled = arch.scaled_to(n_neurons=200, neurons_per_crossbar=100)
        assert scaled.n_crossbars == 2

    def test_preserves_interconnect(self):
        arch = Architecture(n_crossbars=4, neurons_per_crossbar=8,
                            interconnect="star")
        assert arch.scaled_to(16, 4).interconnect == "star"


class TestMultiChipArchitecture:
    def test_build_topology_multichip(self):
        from repro.hardware.presets import custom
        from repro.noc.multichip import MultiChipTopology

        arch = custom(8, 16, interconnect="mesh", n_chips=2, bridge_latency=3)
        topo = arch.build_topology()
        assert isinstance(topo, MultiChipTopology)
        assert topo.n_chips == 2
        assert topo.bridge_latency == 3
        assert topo.chip_kind == "mesh"
        assert topo.n_attach_points == 8

    def test_single_chip_stays_flat(self):
        from repro.hardware.presets import custom
        from repro.noc.multichip import MultiChipTopology

        arch = custom(8, 16, interconnect="mesh")
        assert not isinstance(arch.build_topology(), MultiChipTopology)

    def test_chip_count_clamped_to_crossbars(self):
        """scaled_to may shrink below one crossbar per chip; still builds."""
        from repro.hardware.presets import custom

        arch = custom(8, 16, interconnect="mesh", n_chips=4)
        shrunk = arch.scaled_to(20, 20)  # 1 crossbar, 4 chips requested
        assert shrunk.n_crossbars == 1
        topo = shrunk.build_topology()
        assert topo.n_attach_points == 1

    def test_describe_mentions_chips(self):
        from repro.hardware.presets import custom

        arch = custom(8, 16, interconnect="mesh", n_chips=2, bridge_latency=5)
        text = arch.describe()
        assert "2 chips of mesh" in text
        assert "bridge latency 5" in text

    def test_invalid_chip_parameters_rejected(self):
        import pytest

        from repro.hardware.presets import custom

        with pytest.raises(ValueError):
            custom(8, 16, n_chips=0)
        with pytest.raises(ValueError):
            custom(8, 16, n_chips=2, bridge_latency=0)

    def test_multichip_board_preset(self):
        from repro.hardware.presets import multichip_board
        from repro.noc.multichip import MultiChipTopology

        arch = multichip_board(n_chips=4, crossbars_per_chip=4)
        assert arch.n_crossbars == 16
        topo = arch.build_topology()
        assert isinstance(topo, MultiChipTopology)
        assert topo.n_chips == 4
