"""Tests for platform presets."""

from repro.hardware.presets import architecture_for, custom, cxquad, truenorth_like


class TestCxQuad:
    def test_paper_dimensions(self):
        arch = cxquad()
        assert arch.n_crossbars == 4
        assert arch.neurons_per_crossbar == 256
        assert arch.total_capacity == 1024
        assert arch.interconnect == "tree"

    def test_energy_reference_is_128(self):
        assert cxquad().energy.reference_crossbar_size == 128


class TestTrueNorthLike:
    def test_mesh_interconnect(self):
        arch = truenorth_like(n_crossbars=16)
        assert arch.interconnect == "mesh"
        assert arch.build_topology().kind == "mesh"


class TestCustom:
    def test_free_form(self):
        arch = custom(3, 50, interconnect="star", name="x")
        assert arch.n_crossbars == 3
        assert arch.neurons_per_crossbar == 50
        assert arch.name == "x"


class TestArchitectureFor:
    def test_fits_network(self):
        arch = architecture_for(1000, neurons_per_crossbar=256)
        assert arch.fits(1000)
        assert arch.n_crossbars == 4

    def test_exact_fit(self):
        arch = architecture_for(512, neurons_per_crossbar=256)
        assert arch.n_crossbars == 2

    def test_single_crossbar_min(self):
        arch = architecture_for(5, neurons_per_crossbar=256)
        assert arch.n_crossbars == 1
