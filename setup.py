"""Legacy setup shim.

This environment has no network access and no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build.  ``python setup.py
develop`` installs the package in editable mode without requiring wheel.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
