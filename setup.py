"""Package metadata and legacy setup shim.

Metadata lives here (not in a ``[project]`` table) on purpose: the
development environment has no network access and no ``wheel`` package,
so PEP 660 editable installs cannot build and the repo is installed with
``python setup.py develop`` — which only reads setup() arguments.  CI
installs the same metadata through ``pip install -e .[test]``.
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    """Single source of truth: ``repro.__version__``."""
    init = os.path.join(os.path.dirname(__file__), "src", "repro", "__init__.py")
    with open(init) as fh:
        return re.search(r'^__version__ = "(.+?)"', fh.read(), re.M).group(1)


setup(
    name="repro-datesnn",
    version=_version(),
    description=(
        "Reproduction of PSO-based SNN partitioning onto crossbar "
        "neuromorphic hardware with a cycle-accurate NoC simulator "
        "(Das et al., DATE 2018)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.noc": ["_fastsim_kernel.c"]},
    install_requires=[
        "numpy>=2.0",  # np.bitwise_count (columnar mask popcounts)
        "scipy>=1.13",  # first scipy ABI-compatible with numpy 2
        "networkx>=3.0",
    ],
    extras_require={
        "test": [
            "pytest>=8",
            "pytest-benchmark>=4",
            "hypothesis>=6",
        ],
    },
)
